package gdsii

import (
	"encoding/binary"
	"fmt"
	"io"

	"gdsiiguard/internal/geom"
)

// This file is the streaming half of the codec: a record-at-a-time reader
// and writer with O(record) memory, on top of which the in-memory
// Read/Write of gdsii.go are thin adapters. SoC-scale layouts (10⁵–10⁶
// cells) export and re-import through these without the library ever being
// materialized: the writer holds one element's encoding, the reader one
// record plus the element currently being assembled.

// maxXYPoints is the most points a single XY record can carry: the record
// length field is a uint16 counting the 4-byte header plus 8 bytes per
// point, so ⌊(65535−4)/8⌋ = 8191. Longer point lists are split across
// consecutive XY records on write; the reader accumulates repeated XY
// records into one element, so the split is invisible on read.
const maxXYPoints = 8191

// StreamHandler receives the parsed stream one event at a time. Nil
// callbacks are skipped (the record is still validated and consumed). Any
// callback error aborts the parse and is returned from ReadStream.
//
// The Element passed to OnElement owns its XY slice; handlers may retain
// it. Everything else a handler needs must be copied out during the call.
type StreamHandler struct {
	// OnLibrary fires once the library header (BGNLIB/LIBNAME/UNITS) is
	// complete, before the first structure.
	OnLibrary func(name string, userUnit, meterUnit float64) error
	// OnBeginStruct fires at each structure's STRNAME.
	OnBeginStruct func(name string) error
	// OnElement fires once per fully assembled element, in stream order.
	OnElement func(e Element) error
	// OnEndStruct fires at each ENDSTR.
	OnEndStruct func(name string) error
}

// StreamReader parses a GDSII stream record by record. Memory use is one
// record buffer (reused across records) plus the element under assembly;
// the library is never materialized. Structural errors — truncated
// streams, ENDLIB with an open structure or element, duplicate structure
// names — are reported as errors, never silently dropped.
type StreamReader struct {
	r       io.Reader
	recBuf  []byte
	seen    map[string]bool // structure names, for duplicate detection
	started bool
}

// NewStreamReader returns a streaming parser over r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r, seen: make(map[string]bool)}
}

// ReadStream parses the whole stream from r into the handler's callbacks.
// It is the one-shot form of NewStreamReader(r).Run(h).
func ReadStream(r io.Reader, h StreamHandler) error {
	return NewStreamReader(r).Run(h)
}

// readRecord reads the next record into the reader's reusable buffer. The
// returned data slice is only valid until the next call.
func (sr *StreamReader) readRecord() (uint16, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("gdsii: truncated record header")
		}
		return 0, nil, err
	}
	size := binary.BigEndian.Uint16(hdr[0:2])
	typ := binary.BigEndian.Uint16(hdr[2:4])
	if size < 4 {
		return 0, nil, fmt.Errorf("gdsii: record 0x%04x with impossible size %d", typ, size)
	}
	n := int(size) - 4
	if cap(sr.recBuf) < n {
		sr.recBuf = make([]byte, n, n+512)
	}
	data := sr.recBuf[:n]
	if _, err := io.ReadFull(sr.r, data); err != nil {
		return 0, nil, fmt.Errorf("gdsii: truncated record 0x%04x", typ)
	}
	return typ, data, nil
}

// Run parses the stream until ENDLIB, dispatching to h. A clean stream
// yields exactly one OnLibrary call, balanced OnBeginStruct/OnEndStruct
// pairs, and elements only between them.
func (sr *StreamReader) Run(h StreamHandler) error {
	if sr.started {
		return fmt.Errorf("gdsii: StreamReader.Run called twice")
	}
	sr.started = true

	var (
		sawHeader     bool
		libReported   bool
		libName       string
		userUnit      float64
		meterUnit     float64
		curName       string
		inStruct      bool
		el            *elemBuilder
		pendingStruct bool // between BGNSTR and STRNAME
	)
	reportLib := func() error {
		if libReported {
			return nil
		}
		libReported = true
		if h.OnLibrary != nil {
			return h.OnLibrary(libName, userUnit, meterUnit)
		}
		return nil
	}
	for {
		typ, data, err := sr.readRecord()
		if err == io.EOF {
			return fmt.Errorf("gdsii: missing ENDLIB")
		}
		if err != nil {
			return err
		}
		switch typ {
		case recHEADER:
			sawHeader = true
		case recBGNLIB:
			// timestamps: accepted, not modeled
		case recLIBNAME:
			libName = decodeString(data)
		case recUNITS:
			if len(data) < 16 {
				return fmt.Errorf("gdsii: short UNITS record")
			}
			uu, err := decodeReal8(data[0:8])
			if err != nil {
				return err
			}
			mu, err := decodeReal8(data[8:16])
			if err != nil {
				return err
			}
			userUnit, meterUnit = uu, mu
		case recBGNSTR:
			if inStruct || pendingStruct {
				return fmt.Errorf("gdsii: BGNSTR inside structure %q", curName)
			}
			if err := reportLib(); err != nil {
				return err
			}
			pendingStruct = true
		case recSTRNAME:
			if !pendingStruct {
				return fmt.Errorf("gdsii: STRNAME outside structure")
			}
			curName = decodeString(data)
			if sr.seen[curName] {
				return fmt.Errorf("gdsii: duplicate structure %q", curName)
			}
			sr.seen[curName] = true
			pendingStruct, inStruct = false, true
			if h.OnBeginStruct != nil {
				if err := h.OnBeginStruct(curName); err != nil {
					return err
				}
			}
		case recENDSTR:
			if !inStruct {
				return fmt.Errorf("gdsii: ENDSTR outside structure")
			}
			if el != nil {
				return fmt.Errorf("gdsii: ENDSTR with unterminated element in %q", curName)
			}
			inStruct = false
			if h.OnEndStruct != nil {
				if err := h.OnEndStruct(curName); err != nil {
					return err
				}
			}
			curName = ""
		case recBOUNDARY, recPATH, recSREF, recTEXT:
			if !inStruct {
				return fmt.Errorf("gdsii: element outside structure")
			}
			if el != nil {
				return fmt.Errorf("gdsii: element begun inside element")
			}
			el = &elemBuilder{kind: typ}
		case recLAYER:
			v, err := decodeInt16(data)
			if err != nil {
				return err
			}
			if el != nil {
				el.layer = v
			}
		case recDATATYPE:
			v, err := decodeInt16(data)
			if err != nil {
				return err
			}
			if el != nil {
				el.dataType = v
			}
		case recTEXTTYPE:
			v, err := decodeInt16(data)
			if err != nil {
				return err
			}
			if el != nil {
				el.textType = v
			}
		case recPATHTYPE:
			v, err := decodeInt16(data)
			if err != nil {
				return err
			}
			if el != nil {
				el.pathType = v
			}
		case recWIDTH:
			if len(data) < 4 {
				return fmt.Errorf("gdsii: int32 payload of %d bytes", len(data))
			}
			if el != nil {
				el.width = int32(binary.BigEndian.Uint32(data))
			}
		case recXY:
			if len(data)%4 != 0 {
				return fmt.Errorf("gdsii: int32 payload of %d bytes", len(data))
			}
			if len(data)%8 != 0 {
				return fmt.Errorf("gdsii: odd XY coordinate count")
			}
			if el != nil {
				// Consecutive XY records accumulate into one element: this
				// is how point lists beyond maxXYPoints are carried.
				for i := 0; i+8 <= len(data); i += 8 {
					x := int32(binary.BigEndian.Uint32(data[i:]))
					y := int32(binary.BigEndian.Uint32(data[i+4:]))
					el.xy = append(el.xy, geom.Pt(int64(x), int64(y)))
				}
			}
		case recSNAME:
			if el != nil {
				el.sname = decodeString(data)
			}
		case recSTRING:
			if el != nil {
				el.str = decodeString(data)
			}
		case recSTRANS, recPRESENTATION:
			// orientation/presentation flags: accepted, not modeled
		case recENDEL:
			if !inStruct || el == nil {
				return fmt.Errorf("gdsii: ENDEL without element")
			}
			built, err := el.build()
			if err != nil {
				return err
			}
			el = nil
			if h.OnElement != nil {
				if err := h.OnElement(built); err != nil {
					return err
				}
			}
		case recENDLIB:
			if !sawHeader {
				return fmt.Errorf("gdsii: missing HEADER")
			}
			// A truncated writer that died mid-structure must not read as a
			// smaller-but-valid library: ENDLIB with an open structure or a
			// pending element is a hard error, not silent loss.
			if el != nil {
				return fmt.Errorf("gdsii: ENDLIB with unterminated element in structure %q", curName)
			}
			if inStruct || pendingStruct {
				return fmt.Errorf("gdsii: ENDLIB with unterminated structure %q", curName)
			}
			return reportLib()
		default:
			// Unknown records are legal to skip per the format.
		}
	}
}

// StreamWriter emits a GDSII stream structure by structure with O(record)
// memory: one element's worth of coordinate encoding is buffered at a
// time. Calls must follow the grammar BeginLibrary (BeginStruct Element*
// EndStruct)* EndLibrary; violations are reported as errors. After any
// error the writer is poisoned and every further call returns that error.
type StreamWriter struct {
	w        io.Writer
	err      error
	inLib    bool
	inStruct bool
	done     bool
	seen     map[string]bool // structure names, duplicate detection
	xyBuf    []byte          // reusable XY record payload
	ts       []byte          // fixed timestamp payload
}

// NewStreamWriter returns a streaming writer over w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{
		w:    w,
		seen: make(map[string]bool),
		// Fixed timestamps keep output deterministic.
		ts: int16Data(2023, 1, 1, 0, 0, 0, 2023, 1, 1, 0, 0, 0),
	}
}

func (sw *StreamWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// BeginLibrary writes the HEADER/BGNLIB/LIBNAME/UNITS prologue.
func (sw *StreamWriter) BeginLibrary(name string, userUnit, meterUnit float64) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.inLib || sw.done {
		return sw.fail(fmt.Errorf("gdsii: BeginLibrary called twice"))
	}
	sw.inLib = true
	if err := writeRecord(sw.w, recHEADER, int16Data(600)); err != nil {
		return sw.fail(err)
	}
	if err := writeRecord(sw.w, recBGNLIB, sw.ts); err != nil {
		return sw.fail(err)
	}
	if err := writeRecord(sw.w, recLIBNAME, stringData(name)); err != nil {
		return sw.fail(err)
	}
	units := append(encodeReal8(userUnit), encodeReal8(meterUnit)...)
	if err := writeRecord(sw.w, recUNITS, units); err != nil {
		return sw.fail(err)
	}
	return nil
}

// BeginStruct opens a structure. Structure names must be unique within the
// library.
func (sw *StreamWriter) BeginStruct(name string) error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.inLib || sw.done {
		return sw.fail(fmt.Errorf("gdsii: BeginStruct outside library"))
	}
	if sw.inStruct {
		return sw.fail(fmt.Errorf("gdsii: BeginStruct inside structure"))
	}
	if sw.seen[name] {
		return sw.fail(fmt.Errorf("gdsii: duplicate structure %q", name))
	}
	sw.seen[name] = true
	sw.inStruct = true
	if err := writeRecord(sw.w, recBGNSTR, sw.ts); err != nil {
		return sw.fail(err)
	}
	if err := writeRecord(sw.w, recSTRNAME, stringData(name)); err != nil {
		return sw.fail(err)
	}
	return nil
}

// Element writes one element into the open structure.
func (sw *StreamWriter) Element(e Element) error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.inStruct {
		return sw.fail(fmt.Errorf("gdsii: Element outside structure"))
	}
	if err := sw.writeElement(e); err != nil {
		return sw.fail(err)
	}
	return nil
}

// EndStruct closes the open structure.
func (sw *StreamWriter) EndStruct() error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.inStruct {
		return sw.fail(fmt.Errorf("gdsii: EndStruct outside structure"))
	}
	sw.inStruct = false
	if err := writeRecord(sw.w, recENDSTR, nil); err != nil {
		return sw.fail(err)
	}
	return nil
}

// EndLibrary writes ENDLIB. The writer cannot be reused afterwards.
func (sw *StreamWriter) EndLibrary() error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.inLib || sw.done {
		return sw.fail(fmt.Errorf("gdsii: EndLibrary outside library"))
	}
	if sw.inStruct {
		return sw.fail(fmt.Errorf("gdsii: EndLibrary with open structure"))
	}
	sw.done = true
	if err := writeRecord(sw.w, recENDLIB, nil); err != nil {
		return sw.fail(err)
	}
	return nil
}

// emitXY writes the point list as one or more XY records of at most
// maxXYPoints points each. The GDSII record length is a uint16, so a
// single record caps out at 8191 points — the seed writer hard-failed on
// anything longer; splitting across consecutive XY records is the format's
// escape hatch, and the reader reassembles them transparently.
func (sw *StreamWriter) emitXY(pts []geom.Point) error {
	for len(pts) > 0 {
		n := len(pts)
		if n > maxXYPoints {
			n = maxXYPoints
		}
		if cap(sw.xyBuf) < 8*n {
			sw.xyBuf = make([]byte, 8*maxXYPoints)
		}
		buf := sw.xyBuf[:8*n]
		for i, p := range pts[:n] {
			binary.BigEndian.PutUint32(buf[8*i:], uint32(int32(p.X)))
			binary.BigEndian.PutUint32(buf[8*i+4:], uint32(int32(p.Y)))
		}
		if err := writeRecord(sw.w, recXY, buf); err != nil {
			return err
		}
		pts = pts[n:]
	}
	return nil
}

func (sw *StreamWriter) writeElement(e Element) error {
	w := sw.w
	switch el := e.(type) {
	case Boundary:
		if len(el.XY) < 3 {
			return fmt.Errorf("gdsii: boundary with %d points", len(el.XY))
		}
		if err := writeRecord(w, recBOUNDARY, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recLAYER, int16Data(el.Layer)); err != nil {
			return err
		}
		if err := writeRecord(w, recDATATYPE, int16Data(el.DataType)); err != nil {
			return err
		}
		ring := el.XY
		if ring[0] != ring[len(ring)-1] {
			ring = append(append([]geom.Point(nil), ring...), ring[0])
		}
		if err := sw.emitXY(ring); err != nil {
			return err
		}
	case Path:
		if len(el.XY) < 2 {
			return fmt.Errorf("gdsii: path with %d points", len(el.XY))
		}
		if err := writeRecord(w, recPATH, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recLAYER, int16Data(el.Layer)); err != nil {
			return err
		}
		if err := writeRecord(w, recDATATYPE, int16Data(el.DataType)); err != nil {
			return err
		}
		if err := writeRecord(w, recPATHTYPE, int16Data(el.PathType)); err != nil {
			return err
		}
		if err := writeRecord(w, recWIDTH, int32Data(el.Width)); err != nil {
			return err
		}
		if err := sw.emitXY(el.XY); err != nil {
			return err
		}
	case SRef:
		if err := writeRecord(w, recSREF, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recSNAME, stringData(el.Name)); err != nil {
			return err
		}
		if err := sw.emitXY([]geom.Point{el.At}); err != nil {
			return err
		}
	case Text:
		if err := writeRecord(w, recTEXT, nil); err != nil {
			return err
		}
		if err := writeRecord(w, recLAYER, int16Data(el.Layer)); err != nil {
			return err
		}
		if err := writeRecord(w, recTEXTTYPE, int16Data(el.TextType)); err != nil {
			return err
		}
		if err := sw.emitXY([]geom.Point{el.At}); err != nil {
			return err
		}
		if err := writeRecord(w, recSTRING, stringData(el.String)); err != nil {
			return err
		}
	default:
		return fmt.Errorf("gdsii: unknown element %T", e)
	}
	return writeRecord(w, recENDEL, nil)
}
