package gdsii

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"gdsiiguard/internal/geom"
)

// rawStream hand-assembles a GDSII byte stream record by record, bypassing
// the StreamWriter's grammar checks, so tests can craft the malformed
// streams the reader must reject.
type rawStream struct {
	buf bytes.Buffer
}

func (rs *rawStream) rec(t *testing.T, typ uint16, data []byte) *rawStream {
	t.Helper()
	if err := writeRecord(&rs.buf, typ, data); err != nil {
		t.Fatal(err)
	}
	return rs
}

func (rs *rawStream) prologue(t *testing.T, libName string) *rawStream {
	ts := int16Data(2023, 1, 1, 0, 0, 0, 2023, 1, 1, 0, 0, 0)
	rs.rec(t, recHEADER, int16Data(600))
	rs.rec(t, recBGNLIB, ts)
	rs.rec(t, recLIBNAME, stringData(libName))
	rs.rec(t, recUNITS, append(encodeReal8(1e-3), encodeReal8(1e-9)...))
	return rs
}

func (rs *rawStream) beginStruct(t *testing.T, name string) *rawStream {
	ts := int16Data(2023, 1, 1, 0, 0, 0, 2023, 1, 1, 0, 0, 0)
	rs.rec(t, recBGNSTR, ts)
	rs.rec(t, recSTRNAME, stringData(name))
	return rs
}

func (rs *rawStream) boundary(t *testing.T) *rawStream {
	rs.rec(t, recBOUNDARY, nil)
	rs.rec(t, recLAYER, int16Data(1))
	rs.rec(t, recDATATYPE, int16Data(0))
	rs.rec(t, recXY, int32Data(0, 0, 10, 0, 10, 10, 0, 0))
	rs.rec(t, recENDEL, nil)
	return rs
}

// spiral returns n distinct points (no accidental ring closure).
func spiral(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(int64(i*3), int64(i*i%100003))
	}
	return pts
}

// countXYRecords scans the raw stream and counts XY records.
func countXYRecords(t *testing.T, stream []byte) int {
	t.Helper()
	n := 0
	for off := 0; off < len(stream); {
		if off+4 > len(stream) {
			t.Fatalf("trailing bytes at %d", off)
		}
		size := int(binary.BigEndian.Uint16(stream[off:]))
		typ := binary.BigEndian.Uint16(stream[off+2:])
		if size < 4 {
			t.Fatalf("bad record size %d at %d", size, off)
		}
		if typ == recXY {
			n++
		}
		off += size
	}
	return n
}

// TestLongXYSplitRoundTrip is the regression test for the >8191-point
// writer hard-failure: long point lists must split across consecutive XY
// records and reassemble on read. The seed writer returned "record too
// long" for every case here beyond 8191 points.
func TestLongXYSplitRoundTrip(t *testing.T) {
	for _, n := range []int{8000, 8191, 8192, 16000} {
		t.Run(fmt.Sprintf("path%d", n), func(t *testing.T) {
			lib := NewLibrary("long")
			s := lib.AddStruct("S")
			pts := spiral(n)
			s.Elements = append(s.Elements, Path{Layer: 11, Width: 70, XY: pts})
			var buf bytes.Buffer
			if err := Write(&buf, lib); err != nil {
				t.Fatalf("Write with %d points: %v", n, err)
			}
			wantRecs := (n + maxXYPoints - 1) / maxXYPoints
			if got := countXYRecords(t, buf.Bytes()); got != wantRecs {
				t.Errorf("XY records = %d, want %d", got, wantRecs)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			p, ok := got.Struct("S").Elements[0].(Path)
			if !ok {
				t.Fatalf("element is %T, want Path", got.Struct("S").Elements[0])
			}
			if len(p.XY) != n {
				t.Fatalf("points = %d, want %d", len(p.XY), n)
			}
			for i := range pts {
				if p.XY[i] != pts[i] {
					t.Fatalf("point %d = %v, want %v", i, p.XY[i], pts[i])
				}
			}
		})
	}
	// Boundary: the writer appends the closing point (n+1 total on the
	// wire), the reader strips it back off.
	for _, n := range []int{8191, 16000} {
		t.Run(fmt.Sprintf("boundary%d", n), func(t *testing.T) {
			lib := NewLibrary("long")
			s := lib.AddStruct("S")
			pts := spiral(n)
			s.Elements = append(s.Elements, Boundary{Layer: 2, XY: pts})
			var buf bytes.Buffer
			if err := Write(&buf, lib); err != nil {
				t.Fatalf("Write with %d points: %v", n, err)
			}
			got, err := Read(&buf)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			b := got.Struct("S").Elements[0].(Boundary)
			if len(b.XY) != n {
				t.Fatalf("points = %d, want %d", len(b.XY), n)
			}
			for i := range pts {
				if b.XY[i] != pts[i] {
					t.Fatalf("point %d = %v, want %v", i, b.XY[i], pts[i])
				}
			}
		})
	}
}

// TestDuplicateStructureRead is the regression test for silent overwrite on
// duplicate structure names: the seed Read merged both bodies into one
// struct via AddStruct; now it must be a hard error.
func TestDuplicateStructureRead(t *testing.T) {
	var rs rawStream
	rs.prologue(t, "dup")
	rs.beginStruct(t, "A").boundary(t).rec(t, recENDSTR, nil)
	rs.beginStruct(t, "A").boundary(t).rec(t, recENDSTR, nil)
	rs.rec(t, recENDLIB, nil)
	_, err := Read(&rs.buf)
	if err == nil {
		t.Fatal("duplicate structure accepted")
	}
	if !strings.Contains(err.Error(), `duplicate structure "A"`) {
		t.Errorf("error = %v, want duplicate structure", err)
	}
}

// TestENDLIBWithOpenStructure is the regression test for silent loss of an
// open structure: a stream whose writer died between ENDSTR and ENDLIB used
// to read as a smaller-but-valid library.
func TestENDLIBWithOpenStructure(t *testing.T) {
	var rs rawStream
	rs.prologue(t, "trunc")
	rs.beginStruct(t, "A").boundary(t)
	// no ENDSTR
	rs.rec(t, recENDLIB, nil)
	_, err := Read(&rs.buf)
	if err == nil {
		t.Fatal("ENDLIB with open structure accepted")
	}
	if !strings.Contains(err.Error(), `unterminated structure "A"`) {
		t.Errorf("error = %v, want unterminated structure", err)
	}
}

// TestENDLIBWithOpenElement: ENDLIB while an element is still being
// assembled must also be a hard error, not a dropped element.
func TestENDLIBWithOpenElement(t *testing.T) {
	var rs rawStream
	rs.prologue(t, "trunc")
	rs.beginStruct(t, "A")
	rs.rec(t, recBOUNDARY, nil)
	rs.rec(t, recLAYER, int16Data(1))
	rs.rec(t, recXY, int32Data(0, 0, 10, 0, 10, 10, 0, 0))
	// no ENDEL, no ENDSTR
	rs.rec(t, recENDLIB, nil)
	_, err := Read(&rs.buf)
	if err == nil {
		t.Fatal("ENDLIB with open element accepted")
	}
	if !strings.Contains(err.Error(), "unterminated element") {
		t.Errorf("error = %v, want unterminated element", err)
	}
}

func TestENDSTRWithOpenElement(t *testing.T) {
	var rs rawStream
	rs.prologue(t, "trunc")
	rs.beginStruct(t, "A")
	rs.rec(t, recBOUNDARY, nil)
	rs.rec(t, recENDSTR, nil)
	rs.rec(t, recENDLIB, nil)
	_, err := Read(&rs.buf)
	if err == nil || !strings.Contains(err.Error(), "unterminated element") {
		t.Errorf("error = %v, want unterminated element", err)
	}
}

func TestStreamReaderStructuralErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T) *rawStream
		want  string
	}{
		{"element outside structure", func(t *testing.T) *rawStream {
			var rs rawStream
			rs.prologue(t, "x").rec(t, recBOUNDARY, nil)
			return &rs
		}, "element outside structure"},
		{"nested BGNSTR", func(t *testing.T) *rawStream {
			var rs rawStream
			rs.prologue(t, "x").beginStruct(t, "A").beginStruct(t, "B")
			return &rs
		}, "BGNSTR inside structure"},
		{"ENDEL without element", func(t *testing.T) *rawStream {
			var rs rawStream
			rs.prologue(t, "x").beginStruct(t, "A").rec(t, recENDEL, nil)
			return &rs
		}, "ENDEL without element"},
		{"missing HEADER", func(t *testing.T) *rawStream {
			var rs rawStream
			rs.rec(t, recBGNLIB, int16Data(0)).rec(t, recENDLIB, nil)
			return &rs
		}, "missing HEADER"},
		{"odd coordinate count", func(t *testing.T) *rawStream {
			var rs rawStream
			rs.prologue(t, "x").beginStruct(t, "A").rec(t, recBOUNDARY, nil)
			rs.rec(t, recXY, int32Data(0, 0, 1))
			return &rs
		}, "odd XY coordinate count"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(&tc.build(t).buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestStreamWriterGrammar(t *testing.T) {
	t.Run("element outside structure", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		if err := sw.BeginLibrary("x", 1e-3, 1e-9); err != nil {
			t.Fatal(err)
		}
		if err := sw.Element(SRef{Name: "A", At: geom.Pt(0, 0)}); err == nil {
			t.Error("Element outside structure accepted")
		}
	})
	t.Run("duplicate struct", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		_ = sw.BeginLibrary("x", 1e-3, 1e-9)
		_ = sw.BeginStruct("A")
		_ = sw.EndStruct()
		if err := sw.BeginStruct("A"); err == nil || !strings.Contains(err.Error(), "duplicate structure") {
			t.Errorf("duplicate BeginStruct: %v", err)
		}
	})
	t.Run("end library with open structure", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		_ = sw.BeginLibrary("x", 1e-3, 1e-9)
		_ = sw.BeginStruct("A")
		if err := sw.EndLibrary(); err == nil {
			t.Error("EndLibrary with open structure accepted")
		}
	})
	t.Run("poisoned after error", func(t *testing.T) {
		sw := NewStreamWriter(&bytes.Buffer{})
		first := sw.BeginStruct("A") // outside library → error
		if first == nil {
			t.Fatal("BeginStruct outside library accepted")
		}
		if err := sw.BeginLibrary("x", 1e-3, 1e-9); err != first {
			t.Errorf("poisoned writer returned %v, want %v", err, first)
		}
	})
}

// TestWriteStreamEquivalence: the in-memory Write and a hand-driven
// StreamWriter must produce byte-identical output.
func TestWriteStreamEquivalence(t *testing.T) {
	lib := NewLibrary("eq")
	a := lib.AddStruct("A")
	a.Elements = append(a.Elements,
		Boundary{Layer: 1, XY: spiral(5)},
		Path{Layer: 11, Width: 70, XY: spiral(4)},
	)
	top := lib.AddStruct("TOP")
	top.Elements = append(top.Elements,
		SRef{Name: "A", At: geom.Pt(100, 200)},
		Text{Layer: 63, At: geom.Pt(5, 6), String: "crit"},
	)
	var whole bytes.Buffer
	if err := Write(&whole, lib); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	sw := NewStreamWriter(&streamed)
	if err := sw.BeginLibrary("eq", 1e-3, 1e-9); err != nil {
		t.Fatal(err)
	}
	for _, s := range lib.Structs {
		if err := sw.BeginStruct(s.Name); err != nil {
			t.Fatal(err)
		}
		for _, e := range s.Elements {
			if err := sw.Element(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := sw.EndStruct(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.EndLibrary(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Error("Write and StreamWriter output differ")
	}
}

func TestStreamStatsMatchesLibraryStats(t *testing.T) {
	lib := NewLibrary("stats")
	a := lib.AddStruct("A")
	a.Elements = append(a.Elements, Boundary{Layer: 1, XY: spiral(4)})
	top := lib.AddStruct("TOP")
	top.Elements = append(top.Elements,
		SRef{Name: "A", At: geom.Pt(0, 0)},
		Path{Layer: 12, Width: 70, XY: spiral(3)},
		Text{Layer: 63, At: geom.Pt(1, 1), String: "x"},
	)
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	want := lib.Stats()
	got, name, err := StreamStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "stats" {
		t.Errorf("name = %q", name)
	}
	if got.Structs != want.Structs || got.Boundaries != want.Boundaries ||
		got.Paths != want.Paths || got.SRefs != want.SRefs || got.Texts != want.Texts ||
		len(got.LayersUsed) != len(want.LayersUsed) {
		t.Errorf("StreamStats = %+v, want %+v", got, want)
	}
}

// TestStreamLayoutMatchesFromLayout: the streaming layout export must be
// byte-identical to the in-memory FromLayout+Write path.
func TestStreamLayoutMatchesFromLayout(t *testing.T) {
	l, g := exportToy(t)
	var whole bytes.Buffer
	if err := Write(&whole, g); err != nil {
		t.Fatal(err)
	}
	wires := []Wire{
		{Metal: 1, Width: 70, Pts: []geom.Point{geom.Pt(0, 700), geom.Pt(1000, 700)}},
		{Metal: 2, Width: 70, Pts: []geom.Point{geom.Pt(1000, 700), geom.Pt(1000, 2100)}},
	}
	var streamed bytes.Buffer
	if err := StreamLayout(&streamed, l, SliceWires(wires)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole.Bytes(), streamed.Bytes()) {
		t.Error("StreamLayout and Write(FromLayout) output differ")
	}
}

// TestStreamLayoutTiles: the hierarchical export SRefs each non-empty tile
// from the top and keeps per-cell SRefs tile-local; a re-import sees the
// same cell count through one extra level of hierarchy.
func TestStreamLayoutTiles(t *testing.T) {
	l, _ := exportToy(t)
	var buf bytes.Buffer
	grid := TileGrid{TileRows: 2, TileSites: 20}
	if err := StreamLayoutTiles(&buf, l, nil, grid); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Placements: u1 (0,0) tile (0,0); u2 (1,5) tile (0,0); u3 (2,10) tile (1,0).
	for _, name := range []string{"TILE_0_0", "TILE_1_0", "toy"} {
		if got.Struct(name) == nil {
			t.Errorf("struct %s missing", name)
		}
	}
	var cellRefs, tileRefs int
	for _, s := range got.Structs {
		for _, e := range s.Elements {
			sr, ok := e.(SRef)
			if !ok {
				continue
			}
			if strings.HasPrefix(sr.Name, "TILE_") {
				tileRefs++
			} else if got.Struct(sr.Name) != nil && s.Name != "toy" {
				cellRefs++
			}
		}
	}
	if cellRefs != 3 {
		t.Errorf("cell SRefs in tiles = %d, want 3", cellRefs)
	}
	if tileRefs != 2 {
		t.Errorf("tile SRefs in top = %d, want 2", tileRefs)
	}
	// Tile-local coordinate of u3 (row 2, site 10) in TILE_1_0 anchored at
	// row 2, site 0: the absolute delta.
	origin := l.SiteDBU(2, 0)
	at := l.SiteDBU(2, 10)
	wantLocal := geom.Pt(at.X-origin.X, at.Y-origin.Y)
	found := false
	for _, e := range got.Struct("TILE_1_0").Elements {
		if sr, ok := e.(SRef); ok && sr.Name == "DFF_X1" && sr.At == wantLocal {
			found = true
		}
	}
	if !found {
		t.Errorf("u3 SRef at local %v missing in TILE_1_0", wantLocal)
	}
	// Critical label stays absolute in the top struct.
	foundLabel := false
	for _, e := range got.Struct("toy").Elements {
		if txt, ok := e.(Text); ok && txt.String == "u3" && txt.At == at {
			foundLabel = true
		}
	}
	if !foundLabel {
		t.Error("critical label missing or not absolute in top")
	}
}
