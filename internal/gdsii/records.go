// Package gdsii reads and writes GDSII stream format — the binary mask
// layout exchange format that tapeout hands to the foundry and that the
// paper's threat model assumes the attacker starts from. The codec covers
// the record set needed for standard-cell layouts: library/structure
// headers, boundaries, paths, structure references and text labels.
package gdsii

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Record type bytes (record-type << 8 | data-type), per the GDSII stream
// specification.
const (
	recHEADER       = 0x0002
	recBGNLIB       = 0x0102
	recLIBNAME      = 0x0206
	recUNITS        = 0x0305
	recENDLIB       = 0x0400
	recBGNSTR       = 0x0502
	recSTRNAME      = 0x0606
	recENDSTR       = 0x0700
	recBOUNDARY     = 0x0800
	recPATH         = 0x0900
	recSREF         = 0x0A00
	recTEXT         = 0x0C00
	recLAYER        = 0x0D02
	recDATATYPE     = 0x0E02
	recWIDTH        = 0x0F03
	recXY           = 0x1003
	recENDEL        = 0x1100
	recSNAME        = 0x1206
	recTEXTTYPE     = 0x1602
	recPRESENTATION = 0x1701
	recSTRING       = 0x1906
	recSTRANS       = 0x1A01
	recPATHTYPE     = 0x2102
)

// writeRecord emits a record with its 4-byte header. GDSII record payloads
// must be even-length; strings are padded with a NUL.
func writeRecord(w io.Writer, typ uint16, data []byte) error {
	if len(data)%2 == 1 {
		data = append(data, 0)
	}
	total := len(data) + 4
	if total > math.MaxUint16 {
		return fmt.Errorf("gdsii: record 0x%04x too long (%d bytes)", typ, total)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], uint16(total))
	binary.BigEndian.PutUint16(hdr[2:4], typ)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// int16Data encodes int16 values big-endian.
func int16Data(vals ...int16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

// int32Data encodes int32 values big-endian.
func int32Data(vals ...int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// decodeInt16 decodes the first int16 of a payload.
func decodeInt16(data []byte) (int16, error) {
	if len(data) < 2 {
		return 0, fmt.Errorf("gdsii: int16 payload of %d bytes", len(data))
	}
	return int16(binary.BigEndian.Uint16(data)), nil
}

// stringData encodes an ASCII string (caller pads via writeRecord).
func stringData(s string) []byte { return []byte(s) }

// decodeString strips trailing NUL padding.
func decodeString(data []byte) string {
	for len(data) > 0 && data[len(data)-1] == 0 {
		data = data[:len(data)-1]
	}
	return string(data)
}

// encodeReal8 converts a float64 to the GDSII 8-byte excess-64 base-16
// floating point representation.
func encodeReal8(f float64) []byte {
	out := make([]byte, 8)
	if f == 0 {
		return out
	}
	neg := false
	if f < 0 {
		neg = true
		f = -f
	}
	// Normalize mantissa into [1/16, 1) with exponent base 16.
	exp := 0
	for f >= 1 {
		f /= 16
		exp++
	}
	for f < 1.0/16 {
		f *= 16
		exp--
	}
	mant := uint64(f * (1 << 56)) // 7 bytes of mantissa
	b0 := byte(exp + 64)
	if neg {
		b0 |= 0x80
	}
	out[0] = b0
	for i := 0; i < 7; i++ {
		out[1+i] = byte(mant >> uint(8*(6-i)))
	}
	return out
}

// decodeReal8 converts the GDSII 8-byte real back to float64.
func decodeReal8(data []byte) (float64, error) {
	if len(data) < 8 {
		return 0, fmt.Errorf("gdsii: real8 payload of %d bytes", len(data))
	}
	b0 := data[0]
	neg := b0&0x80 != 0
	exp := int(b0&0x7f) - 64
	var mant uint64
	for i := 0; i < 7; i++ {
		mant = mant<<8 | uint64(data[1+i])
	}
	f := float64(mant) / float64(uint64(1)<<56)
	f *= math.Pow(16, float64(exp))
	if neg {
		f = -f
	}
	return f, nil
}
