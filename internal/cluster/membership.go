package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/obs"
)

// Node is one guardd worker as the coordinator sees it. Worker implements
// it in-process; HTTPNode implements it over the guardd cluster JSON API.
type Node interface {
	// ID is the node's stable identity (membership, ring and metrics key).
	ID() string
	// Ping probes the node's health and drain-aware readiness; a non-nil
	// error marks the node unhealthy until a later probe succeeds.
	Ping(ctx context.Context) error
	// RunIsland executes one island epoch.
	RunIsland(ctx context.Context, req IslandRequest) (*IslandResult, error)
}

// member is one node plus the dispatch state the coordinator tracks for it.
type member struct {
	node     Node
	healthy  bool
	inflight int
	// ewmaSec is an exponentially weighted mean of recent island epoch
	// latencies (0 until the first completion), the latency half of the
	// load-aware dispatch signal.
	ewmaSec   float64
	lastErr   error
	lastProbe time.Time
}

// NodeInfo is a point-in-time public view of one member.
type NodeInfo struct {
	ID       string  `json:"id"`
	Healthy  bool    `json:"healthy"`
	InFlight int     `json:"inflight"`
	EWMASec  float64 `json:"ewma_seconds"`
	LastErr  string  `json:"last_error,omitempty"`
}

// Membership tracks the coordinator's worker set: who exists, who is
// healthy, and how loaded each node is. Dispatch (Acquire) prefers the
// design's consistent-hash owner for cache affinity but falls through to
// the least-loaded healthy node when the owner is down or clearly more
// loaded. All methods are safe for concurrent use.
type Membership struct {
	mu      sync.Mutex
	members map[string]*member
	ring    *Ring
}

// NewMembership creates an empty membership.
func NewMembership() *Membership {
	return &Membership{
		members: make(map[string]*member),
		ring:    NewRing(64),
	}
}

// Add registers a node (healthy until a probe says otherwise). Re-adding
// an ID replaces the node but keeps its ring points stable.
func (m *Membership) Add(n Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.members[n.ID()]; ok {
		prev.node = n
		prev.healthy = true
		prev.lastErr = nil
	} else {
		m.members[n.ID()] = &member{node: n, healthy: true}
		m.ring.Add(n.ID())
	}
	nodeHealthy.With(n.ID()).Set(1)
	obs.Logger().Info("cluster: node joined", "node", n.ID(), "nodes", len(m.members))
}

// Remove drops a node from membership and the ring.
func (m *Membership) Remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[id]; !ok {
		return
	}
	delete(m.members, id)
	m.ring.Remove(id)
	nodeHealthy.With(id).Set(0)
	obs.Logger().Info("cluster: node removed", "node", id, "nodes", len(m.members))
}

// Len returns the member count (healthy or not).
func (m *Membership) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.members)
}

// Nodes returns a snapshot of every member, sorted by ID.
func (m *Membership) Nodes() []NodeInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeInfo, 0, len(m.members))
	for id, mb := range m.members {
		info := NodeInfo{ID: id, Healthy: mb.healthy, InFlight: mb.inflight, EWMASec: mb.ewmaSec}
		if mb.lastErr != nil {
			info.LastErr = mb.lastErr.Error()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Probe pings every member once (concurrently) and updates health state. A
// node that fails its probe is marked unhealthy and skipped by Acquire
// until a later probe succeeds.
func (m *Membership) Probe(ctx context.Context) {
	// Snapshot each member's Node under the lock: Add replaces member.node
	// on a re-join, so the probe goroutines must not read it unlocked.
	type probeTarget struct {
		mb   *member
		node Node
	}
	m.mu.Lock()
	targets := make([]probeTarget, 0, len(m.members))
	for _, mb := range m.members {
		targets = append(targets, probeTarget{mb: mb, node: mb.node})
	}
	m.mu.Unlock()

	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func(t probeTarget) {
			defer wg.Done()
			id := t.node.ID()
			pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			err := t.node.Ping(pctx)
			cancel()
			m.mu.Lock()
			was := t.mb.healthy
			t.mb.healthy = err == nil
			t.mb.lastErr = err
			t.mb.lastProbe = time.Now()
			m.mu.Unlock()
			if err == nil {
				nodeHealthy.With(id).Set(1)
			} else {
				nodeHealthy.With(id).Set(0)
			}
			if was != (err == nil) {
				obs.Logger().Warn("cluster: node health changed",
					"node", id, "healthy", err == nil, "error", err)
			}
		}(t)
	}
	wg.Wait()
}

// StartProbing probes all members every interval until ctx is done.
func (m *Membership) StartProbing(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				m.Probe(ctx)
			}
		}
	}()
}

// ErrNoNodes is returned by Acquire when no healthy node exists.
var ErrNoNodes = fmt.Errorf("cluster: no healthy nodes")

// Acquire picks a node for key and reserves one in-flight slot on it:
// the consistent-hash owner when it is healthy and not clearly more loaded
// than the best alternative, otherwise the least-loaded healthy node
// (latency EWMA breaks in-flight ties). Call the returned release exactly
// once with the epoch's outcome; a failed epoch whose error is not a
// cancellation marks the node unhealthy until the next successful probe.
func (m *Membership) Acquire(key string) (Node, func(d time.Duration, err error), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var chosen *member
	// Preference order: ring sequence from the key's owner.
	for _, id := range m.ring.Sequence(key, len(m.members)) {
		if mb := m.members[id]; mb != nil && mb.healthy {
			chosen = mb
			break
		}
	}
	if chosen == nil {
		return nil, nil, ErrNoNodes
	}
	// Load-aware override: abandon cache affinity when the owner has at
	// least two more in-flight epochs than the least-loaded healthy node
	// (ties prefer the lower-latency node).
	var least *member
	for _, mb := range m.members {
		if !mb.healthy {
			continue
		}
		if least == nil || mb.inflight < least.inflight ||
			(mb.inflight == least.inflight && mb.ewmaSec < least.ewmaSec) {
			least = mb
		}
	}
	if least != nil && chosen.inflight >= least.inflight+2 {
		chosen = least
	}
	chosen.inflight++
	nodeInflight.With(chosen.node.ID()).Set(float64(chosen.inflight))
	node := chosen.node
	release := func(d time.Duration, err error) {
		m.mu.Lock()
		defer m.mu.Unlock()
		chosen.inflight--
		nodeInflight.With(node.ID()).Set(float64(chosen.inflight))
		if err == nil {
			const alpha = 0.3
			if chosen.ewmaSec == 0 {
				chosen.ewmaSec = d.Seconds()
			} else {
				chosen.ewmaSec = alpha*d.Seconds() + (1-alpha)*chosen.ewmaSec
			}
			return
		}
		// A stage-tagged failure is the flow rejecting this design or
		// chromosome — the node itself executed fine and stays in rotation.
		// Saturation is backpressure from a healthy-but-busy node, not a
		// fault. Any other untagged, non-cancellation failure (transport
		// loss, injected node fault, panic outside the flow) marks the node
		// unhealthy until the next successful probe.
		if core.StageOf(err) == "" && core.Classify(err) != core.ClassCanceled && !IsSaturated(err) {
			chosen.healthy = false
			chosen.lastErr = err
			nodeHealthy.With(node.ID()).Set(0)
		}
	}
	return node, release, nil
}
