package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gdsiiguard/internal/benchdesigns"
	"gdsiiguard/internal/core"
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/obs"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/sdc"
)

// ErrSaturated is returned by RunIsland when the worker is already
// executing its maximum number of concurrent island epochs. It classifies
// as transient, so coordinators retry elsewhere (HTTP maps it to 503 with
// Retry-After).
var ErrSaturated = &saturatedError{}

type saturatedError struct{}

func (*saturatedError) Error() string   { return "cluster: worker saturated (island slots exhausted)" }
func (*saturatedError) Transient() bool { return true }
func (*saturatedError) Saturated() bool { return true }

// RetryAfter is the in-process back-off hint before re-dispatching (the
// HTTP transport carries the worker's Retry-After header instead).
func (*saturatedError) RetryAfter() time.Duration { return 50 * time.Millisecond }

// IsSaturated reports whether err is a worker capacity rejection —
// ErrSaturated in-process, or a 503 across the HTTP boundary. Saturation
// is backpressure to wait out, not a node fault: the driver re-dispatches
// after the err's Retry-After hint without burning the island's retry
// budget, and membership keeps the node in rotation.
func IsSaturated(err error) bool {
	var s interface{ Saturated() bool }
	return errors.As(err, &s) && s.Saturated()
}

// retryAfterOf returns err's back-off hint (the Retry-After header across
// HTTP), or def when err carries none.
func retryAfterOf(err error, def time.Duration) time.Duration {
	var r interface{ RetryAfter() time.Duration }
	if errors.As(err, &r) {
		if d := r.RetryAfter(); d > 0 {
			return d
		}
	}
	return def
}

// BaselineLoader resolves a design reference to an evaluated baseline.
// Workers default to a built-in loader with a small cache; tests and the
// single-process cluster inject one to share baselines across workers.
type BaselineLoader func(ctx context.Context, ref DesignRef) (*core.Baseline, error)

// WorkerOptions configures a worker node. Zero values take defaults.
type WorkerOptions struct {
	// Loader resolves designs (default: built-in benchmark/DEF loader with
	// a per-worker cache).
	Loader BaselineLoader
	// Budget bounds concurrent flow evaluations across every island this
	// worker executes — the node-wide admission control. In the
	// single-process cluster one budget is shared by all workers, making
	// it cluster-wide. Default: a private budget of Parallelism slots.
	Budget *nsga2.EvalBudget
	// Parallelism is the per-island evaluation worker count
	// (default NumCPU).
	Parallelism int
	// MaxIslands caps concurrently executing island epochs
	// (default NumCPU); excess RunIsland calls fail with ErrSaturated.
	MaxIslands int
}

// Worker executes island epochs. It implements Node directly (the
// in-process transport of the single-binary cluster mode) and backs the
// HTTP worker endpoint (NewWorkerHandler).
type Worker struct {
	id     string
	opts   WorkerOptions
	slots  chan struct{}
	budget *nsga2.EvalBudget

	mu        sync.Mutex
	baselines map[string]*baselineEntry
}

// baselineEntry is one design's cache slot; ready closes when the load
// finishes (per-key singleflight: concurrent epochs for the same design
// wait on it, while other designs load independently).
type baselineEntry struct {
	ready chan struct{}
	b     *core.Baseline
	err   error
}

// NewWorker creates a worker node with the given ID.
func NewWorker(id string, opts WorkerOptions) *Worker {
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.NumCPU()
	}
	if opts.MaxIslands <= 0 {
		opts.MaxIslands = runtime.NumCPU()
	}
	budget := opts.Budget
	if budget == nil {
		budget = nsga2.NewEvalBudget(opts.Parallelism)
	}
	return &Worker{
		id:        id,
		opts:      opts,
		slots:     make(chan struct{}, opts.MaxIslands),
		budget:    budget,
		baselines: make(map[string]*baselineEntry),
	}
}

// ID returns the worker's node identity.
func (w *Worker) ID() string { return w.id }

// Ping reports the in-process worker as always reachable.
func (w *Worker) Ping(ctx context.Context) error { return ctx.Err() }

// RunIsland executes one island epoch: load (or reuse) the design's
// baseline, run the requested generations of NSGA-II seeded with the
// continuation population, and return the final population, the island
// front and the epoch's counters. Failures keep their typed stage/class
// taxonomy. Saturation (more concurrent epochs than MaxIslands) fails
// fast with ErrSaturated instead of queueing unboundedly.
func (w *Worker) RunIsland(ctx context.Context, req IslandRequest) (*IslandResult, error) {
	if err := fault.Hit(fault.ClusterIsland); err != nil {
		return nil, err
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	select {
	case w.slots <- struct{}{}:
		defer func() { <-w.slots }()
	default:
		return nil, ErrSaturated
	}
	base, err := w.baseline(ctx, req.Design)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	log, err := nsga2.OptimizeCtx(ctx, base, nsga2.Options{
		PopSize:     req.PopSize,
		Generations: req.Generations,
		// Epochs are short and continuation crosses them; intra-epoch
		// patience would only stop islands that are still migrating.
		Patience:    -1,
		Seed:        req.Seed,
		SeedPop:     req.SeedPop,
		Parallelism: w.opts.Parallelism,
		Budget:      w.budget,
	})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	gens := log.Generations
	if gens < 1 {
		gens = 1
	}
	genSec := elapsed.Seconds() / float64(gens)
	islandGenSeconds.With(w.id).Observe(genSec)
	obs.Logger().Debug("cluster: island epoch complete",
		"node", w.id, "island", req.Island, "epoch", req.Epoch,
		"evaluations", len(log.Evaluations), "front", len(log.Front),
		"gen_seconds", genSec)

	res := &IslandResult{
		Island:      req.Island,
		Node:        w.id,
		Front:       log.Front,
		Evaluations: len(log.Evaluations),
		CacheHits:   log.CacheHits,
		Failures:    log.Failures,
		Delta:       log.Delta,
		GenSeconds:  genSec,
	}
	res.Population = make([]core.Params, 0, len(log.Final))
	for _, in := range log.Final {
		res.Population = append(res.Population, in.Params.Clone())
	}
	return res, nil
}

// baseline resolves and caches the design's evaluated baseline with
// per-key singleflight: concurrent epochs for the same design share one
// load (the first pays, the rest wait on its entry), while loads of
// different designs proceed independently — one slow DEF never blocks
// another design's epochs on this node.
func (w *Worker) baseline(ctx context.Context, ref DesignRef) (*core.Baseline, error) {
	if w.opts.Loader != nil {
		return w.opts.Loader(ctx, ref)
	}
	key := ref.Key()
	w.mu.Lock()
	if e, ok := w.baselines[key]; ok {
		w.mu.Unlock()
		select {
		case <-e.ready:
			return e.b, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	// Bound the per-worker baseline cache: layouts are large and a worker
	// serves a sharded slice of the design space, so a handful suffices.
	if len(w.baselines) >= 8 {
		for k := range w.baselines {
			delete(w.baselines, k)
			break
		}
	}
	e := &baselineEntry{ready: make(chan struct{})}
	w.baselines[key] = e
	w.mu.Unlock()

	e.b, e.err = loadBaseline(ref)
	close(e.ready)
	if e.err != nil {
		// Failed loads don't stay cached; the next request retries.
		w.mu.Lock()
		if w.baselines[key] == e {
			delete(w.baselines, key)
		}
		w.mu.Unlock()
	}
	return e.b, e.err
}

// loadBaseline builds a design baseline from its reference, mirroring the
// public LoadBenchmark/LoadDEF flows at the internal layer.
func loadBaseline(ref DesignRef) (*core.Baseline, error) {
	if ref.Benchmark != "" {
		d, err := benchdesigns.Build(ref.Benchmark)
		if err != nil {
			return nil, err
		}
		return core.EvalBaseline(d.Layout, core.FlowConfig{
			Constraints: d.Cons,
			Activity:    d.Spec.Activity,
			Seed:        1,
		})
	}
	l, err := layout.ReadDEF(bytes.NewReader(ref.DEF), opencell45.MustLoad())
	if err != nil {
		return nil, err
	}
	if len(ref.Assets) > 0 {
		if _, err := l.Netlist.MarkCritical(ref.Assets); err != nil {
			return nil, err
		}
	}
	if ref.ClockPS <= 0 {
		return nil, fmt.Errorf("cluster: clock period must be positive")
	}
	cons := &sdc.Constraints{Clocks: []sdc.Clock{{Name: "clk", Port: "clk", PeriodPS: ref.ClockPS}}}
	return core.EvalBaseline(l, core.FlowConfig{Constraints: cons, Seed: 1})
}
