package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"gdsiiguard/internal/core"
)

// The guardd cluster wire API:
//
//	POST /v1/cluster/island   execute one island epoch (worker)
//	POST /v1/cluster/join     register a worker with the coordinator
//	GET  /v1/cluster/nodes    membership snapshot (coordinator)
//
// plus the service-level GET /v1/healthz and GET /v1/readyz the
// coordinator's membership probes.

// maxIslandBody bounds island request bodies: a DEF upload dominates the
// size, mirroring the service API's cap. A variable so tests can shrink it.
var maxIslandBody int64 = 32 << 20 // 32 MiB

// retryAfterSeconds is the back-off hint sent with saturation 503s.
const retryAfterSeconds = "2"

// errorResponse is the cluster API's error body. Stage/Class/Transient
// carry the core error taxonomy across the node boundary, so the
// coordinator reconstructs a typed error instead of a flattened string.
type errorResponse struct {
	Error     string `json:"error"`
	Stage     string `json:"stage,omitempty"`
	Class     string `json:"class,omitempty"`
	Transient bool   `json:"transient,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeTypedError renders err with its taxonomy. Saturation maps to 503 +
// Retry-After so well-behaved coordinators back off instead of hammering.
func writeTypedError(w http.ResponseWriter, status int, err error) {
	if errors.Is(err, ErrSaturated) {
		w.Header().Set("Retry-After", retryAfterSeconds)
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{
		Error:     err.Error(),
		Stage:     string(core.StageOf(err)),
		Class:     string(core.Classify(err)),
		Transient: core.IsTransient(err),
	})
}

// decodeTypedError reconstructs the worker-side error from a cluster API
// error body, preserving stage and class through core.FlowError so
// core.StageOf/Classify give the coordinator the same answers they would
// in-process. A 503 decodes as saturation carrying the worker's
// Retry-After hint, so the driver waits it out instead of burning retries.
func decodeTypedError(status int, body []byte, retryAfter string) error {
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		er.Error = strings.TrimSpace(string(body))
		if er.Error == "" {
			er.Error = http.StatusText(status)
		}
	}
	base := errors.New(er.Error)
	switch {
	case er.Stage != "" && er.Class != "":
		return &core.FlowError{Stage: core.Stage(er.Stage), Class: core.ErrClass(er.Class), Err: base}
	case status == http.StatusServiceUnavailable:
		return &transportError{
			msg:        er.Error,
			transient:  true,
			saturated:  true,
			retryAfter: parseRetryAfter(retryAfter),
		}
	case er.Transient:
		return &transportError{msg: er.Error, transient: true}
	default:
		return &transportError{msg: er.Error}
	}
}

// parseRetryAfter reads a Retry-After header's delay-seconds form, falling
// back to the wire default when absent or malformed.
func parseRetryAfter(s string) time.Duration {
	if sec, err := strconv.Atoi(strings.TrimSpace(s)); err == nil && sec >= 0 {
		return time.Duration(sec) * time.Second
	}
	sec, _ := strconv.Atoi(retryAfterSeconds)
	return time.Duration(sec) * time.Second
}

// transportError is a node-level (non-flow) failure crossing the HTTP
// boundary; saturation and 5xx responses mark it transient so the driver
// retries the island on another node. Saturation additionally carries the
// worker's Retry-After hint (see IsSaturated/retryAfterOf).
type transportError struct {
	msg        string
	transient  bool
	saturated  bool
	retryAfter time.Duration
}

func (e *transportError) Error() string             { return "cluster: " + e.msg }
func (e *transportError) Transient() bool           { return e.transient }
func (e *transportError) Saturated() bool           { return e.saturated }
func (e *transportError) RetryAfter() time.Duration { return e.retryAfter }

// NewWorkerHandler serves a Worker's island execution over HTTP.
func NewWorkerHandler(w *Worker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/island", func(rw http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(rw, r.Body, maxIslandBody)
		var req IslandRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeTypedError(rw, http.StatusBadRequest,
					fmt.Errorf("cluster: island request exceeds %d bytes", tooBig.Limit))
				return
			}
			writeTypedError(rw, http.StatusBadRequest, fmt.Errorf("cluster: bad island request: %w", err))
			return
		}
		res, err := w.RunIsland(r.Context(), req)
		if err != nil {
			status := http.StatusInternalServerError
			if core.Classify(err) == core.ClassCanceled {
				// The client went away; the status is best-effort.
				status = 499
			} else if req.Validate() != nil {
				status = http.StatusBadRequest
			}
			writeTypedError(rw, status, err)
			return
		}
		writeJSON(rw, http.StatusOK, res)
	})
	return mux
}

// joinRequest is the worker-side registration body.
type joinRequest struct {
	// ID is the joining node's identity; URL its reachable base address.
	ID  string `json:"id"`
	URL string `json:"url"`
}

// NewCoordinatorHandler serves membership management: workers join with
// POST /v1/cluster/join and operators inspect GET /v1/cluster/nodes. A
// join is admitted only after the coordinator successfully probes the
// advertised URL — an unknown or unreachable node is rejected, not added.
func NewCoordinatorHandler(ms *Membership) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/join", func(rw http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(rw, r.Body, 1<<20)
		var req joinRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeTypedError(rw, http.StatusBadRequest, fmt.Errorf("cluster: bad join request: %w", err))
			return
		}
		if req.ID == "" || req.URL == "" {
			writeTypedError(rw, http.StatusBadRequest, fmt.Errorf("cluster: join needs id and url"))
			return
		}
		if _, err := url.ParseRequestURI(req.URL); err != nil {
			writeTypedError(rw, http.StatusBadRequest, fmt.Errorf("cluster: bad join url: %w", err))
			return
		}
		node := NewHTTPNode(req.ID, req.URL, nil)
		probeCtx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		if err := node.Ping(probeCtx); err != nil {
			writeTypedError(rw, http.StatusBadGateway,
				fmt.Errorf("cluster: refusing unknown node %q: probe of %s failed: %w", req.ID, req.URL, err))
			return
		}
		ms.Add(node)
		writeJSON(rw, http.StatusOK, map[string]any{"joined": req.ID, "nodes": ms.Len()})
	})
	mux.HandleFunc("GET /v1/cluster/nodes", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"nodes": ms.Nodes()})
	})
	return mux
}

// HTTPNode speaks the cluster wire API to a remote guardd worker.
type HTTPNode struct {
	id     string
	base   string
	client *http.Client
}

// NewHTTPNode creates a node client for the worker at base (e.g.
// "http://10.0.0.7:8477"). A nil client uses a default with sane timeouts
// for long island epochs.
func NewHTTPNode(id, base string, client *http.Client) *HTTPNode {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Minute}
	}
	return &HTTPNode{id: id, base: strings.TrimRight(base, "/"), client: client}
}

// ID returns the node identity.
func (n *HTTPNode) ID() string { return n.id }

// Ping probes the worker's liveness and drain-aware readiness.
func (n *HTTPNode) Ping(ctx context.Context) error {
	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.base+path, nil)
		if err != nil {
			return err
		}
		resp, err := n.client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: probe %s: %w", path, err)
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: probe %s: %s", path, resp.Status)
		}
	}
	return nil
}

// RunIsland executes one island epoch on the remote worker, reconstructing
// typed worker-side failures from the error body.
func (n *HTTPNode) RunIsland(ctx context.Context, req IslandRequest) (*IslandResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		n.base+"/v1/cluster/island", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(hreq)
	if err != nil {
		return nil, &transportError{msg: err.Error(), transient: true}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, &transportError{msg: err.Error(), transient: true}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeTypedError(resp.StatusCode, data, resp.Header.Get("Retry-After"))
	}
	var res IslandResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, &transportError{msg: fmt.Sprintf("bad island response: %v", err)}
	}
	return &res, nil
}

// JoinCoordinator registers a worker with a coordinator, retrying with a
// fixed delay until ctx is done (workers typically race coordinator
// startup, so one-shot registration would be fragile).
func JoinCoordinator(ctx context.Context, coordinatorURL, id, advertiseURL string) error {
	body, _ := json.Marshal(joinRequest{ID: id, URL: advertiseURL})
	client := &http.Client{Timeout: 10 * time.Second}
	target := strings.TrimRight(coordinatorURL, "/") + "/v1/cluster/join"
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err == nil {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = decodeTypedError(resp.StatusCode, data, "")
		}
		lastErr = err
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return fmt.Errorf("cluster: join %s: %w (last: %v)", coordinatorURL, ctx.Err(), lastErr)
			}
			return ctx.Err()
		case <-time.After(2 * time.Second):
		}
	}
}
