// Package cluster distributes the NSGA-II Pareto exploration across
// sharded guardd nodes with an island model: a coordinator partitions an
// exploration's population into islands, consistent-hashes the design onto
// worker nodes (so a design's islands land where its baseline is already
// cached), fans island epochs out over the node transport, migrates elite
// chromosomes between islands on a ring after every epoch, and merges the
// per-island Pareto fronts (nsga2.MergeFronts) into the final front.
//
// Two transports implement the same Node interface: Worker executes
// islands in-process (the single-binary "cluster in one process" mode,
// deterministic and race-testable), and HTTPNode speaks the guardd cluster
// JSON API to a remote worker (NewWorkerHandler serves the same Worker
// over HTTP). Because flow evaluations are deterministic for a given seed,
// the merged front depends only on the exploration spec — never on which
// node ran an island or how goroutines interleaved — so the in-process
// cluster reproduces exactly what a multi-node deployment computes.
//
// Failure semantics: a worker-side island failure keeps its typed
// stage/class taxonomy (core.FlowError) across the HTTP boundary; the
// coordinator retries transiently failed islands on another node, degrades
// permanently failed islands (the exploration continues on the survivors,
// with an IslandFailure record in the result), and errors out only when
// every island of an epoch is lost.
package cluster

import (
	"crypto/sha256"
	"fmt"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/nsga2"
)

// DesignRef names the design an island evaluates, in the same terms as the
// service job API: exactly one of Benchmark or DEF.
type DesignRef struct {
	// Benchmark is a built-in benchmark design name.
	Benchmark string `json:"benchmark,omitempty"`
	// DEF is an uploaded placed DEF layout (base64 across the wire), with
	// its clock period and security-critical instance names.
	DEF     []byte   `json:"def,omitempty"`
	ClockPS float64  `json:"clock_ps,omitempty"`
	Assets  []string `json:"assets,omitempty"`
}

// Validate checks the reference before it is dispatched or executed.
func (r DesignRef) Validate() error {
	if (r.Benchmark == "") == (len(r.DEF) == 0) {
		return fmt.Errorf("cluster: exactly one of Benchmark or DEF must be set")
	}
	if len(r.DEF) > 0 && r.ClockPS <= 0 {
		return fmt.Errorf("cluster: DEF designs need a positive ClockPS")
	}
	return nil
}

// Key is the design's consistent-hashing and cache identity. DEF designs
// are keyed by a content hash of the layout bytes (plus clock and assets),
// so two different layouts can never share a key — the key decides which
// cached baseline a worker evaluates against, and a collision would
// silently evaluate islands against the wrong design.
func (r DesignRef) Key() string {
	if r.Benchmark != "" {
		return "bench:" + r.Benchmark
	}
	sum := sha256.Sum256(r.DEF)
	return fmt.Sprintf("def:%x:%g:%v", sum[:16], r.ClockPS, r.Assets)
}

// IslandRequest is one island epoch: run Generations NSGA-II generations
// of a PopSize population seeded with SeedPop (empty on the first epoch)
// against Design, under Seed.
type IslandRequest struct {
	Design DesignRef `json:"design"`
	// Island and Epoch locate the request in the exploration (telemetry
	// and error attribution; the worker is stateless across epochs).
	Island int `json:"island"`
	Epoch  int `json:"epoch"`
	// PopSize and Generations size this epoch's run.
	PopSize     int `json:"pop_size"`
	Generations int `json:"generations"`
	// Seed drives the island's stochastic choices; the driver derives one
	// per (exploration seed, island, epoch), so results are reproducible
	// regardless of node assignment.
	Seed int64 `json:"seed"`
	// SeedPop is the island's continuation population: last epoch's final
	// population with the neighbor island's migrated elites at the head.
	SeedPop []core.Params `json:"seed_pop,omitempty"`
}

// Validate checks the request on the worker side before execution.
func (r IslandRequest) Validate() error {
	if err := r.Design.Validate(); err != nil {
		return err
	}
	if r.PopSize < 2 || r.PopSize > 1024 {
		return fmt.Errorf("cluster: island pop_size %d out of range [2, 1024]", r.PopSize)
	}
	if r.Generations < 1 || r.Generations > 4096 {
		return fmt.Errorf("cluster: island generations %d out of range [1, 4096]", r.Generations)
	}
	return nil
}

// IslandResult is one executed island epoch.
type IslandResult struct {
	// Island echoes the request; Node is the executing node's ID.
	Island int    `json:"island"`
	Node   string `json:"node"`
	// Population is the final population's chromosomes (next epoch's
	// continuation seed).
	Population []core.Params `json:"population"`
	// Front is the island-local feasible Pareto front over every
	// evaluation of this epoch.
	Front []nsga2.Individual `json:"front"`
	// Evaluations and CacheHits mirror the island's RunLog counters.
	Evaluations int `json:"evaluations"`
	CacheHits   int `json:"cache_hits"`
	// Failures are the epoch's degraded evaluations (typed stage/class).
	Failures []nsga2.EvalFailure `json:"failures,omitempty"`
	// Delta aggregates the epoch's delta-evaluation reuse counters
	// (operator memo/arena hits, warm-started routes) across the island's
	// evaluator arenas.
	Delta core.DeltaStats `json:"delta"`
	// GenSeconds is the mean per-generation wall time of this epoch, the
	// load signal behind the coordinator's dispatch.
	GenSeconds float64 `json:"gen_seconds"`
}

// ExploreSpec is a distributed exploration request at the coordinator.
type ExploreSpec struct {
	Design DesignRef
	// Islands is the number of islands (default DriverOptions.Islands).
	Islands int
	// PopSize is the per-island population size (default
	// DriverOptions.PopSize).
	PopSize int
	// Generations is the total generation count per island across all
	// epochs (default DriverOptions.Generations).
	Generations int
	// Seed drives every island's stochastic choices (default 1).
	Seed int64
	// MigrationInterval and MigrationCount override the driver defaults
	// when positive.
	MigrationInterval int
	MigrationCount    int
	// Checkpoint, when set, is invoked synchronously after every completed
	// epoch (migration included) with the coordinator's full continuation
	// state; an error aborts the exploration. Excluded from serialization —
	// persistence is the caller's concern.
	Checkpoint func(*EpochCheckpoint) error `json:"-"`
	// Resume continues an interrupted exploration at Resume.Epoch+1. The
	// checkpoint must match the spec's resolved seed and island count;
	// Explore rejects a mismatch.
	Resume *EpochCheckpoint `json:"-"`
}

// IslandFailure records an island lost during a distributed exploration:
// the coordinator degraded to the surviving islands instead of failing the
// job, and this record preserves the worker-side failure's typed taxonomy.
type IslandFailure struct {
	Island int    `json:"island"`
	Node   string `json:"node,omitempty"`
	Epoch  int    `json:"epoch"`
	// Stage and Class carry the core error taxonomy across the cluster
	// boundary (empty stage for non-flow failures such as transport loss).
	Stage core.Stage    `json:"stage,omitempty"`
	Class core.ErrClass `json:"class,omitempty"`
	Err   string        `json:"error"`
}

// ExploreResult is the coordinator-side outcome of a distributed
// exploration.
type ExploreResult struct {
	// Front is the merged, deduplicated Pareto front across all islands
	// and epochs.
	Front []nsga2.Individual
	// Islands is the island count the exploration started with; Epochs the
	// executed epoch count.
	Islands int
	Epochs  int
	// Evaluations and CacheHits aggregate the island RunLog counters;
	// Failures counts degraded evaluations inside surviving islands.
	Evaluations int
	CacheHits   int
	Failures    int
	// Migrations counts elite chromosomes migrated between islands.
	Migrations int
	// Delta aggregates delta-evaluation reuse counters across every
	// island epoch that completed.
	Delta core.DeltaStats
	// Degraded records islands lost mid-run (empty when every island
	// finished every epoch).
	Degraded []IslandFailure
	// Elapsed is the exploration's wall time at the coordinator.
	Elapsed time.Duration
}
