package cluster

import "gdsiiguard/internal/obs"

// Cluster telemetry (exposed by cmd/guardd at /metrics). The node-labeled
// gauges back the coordinator's load-aware dispatch: Membership feeds the
// same in-flight and latency state it dispatches on into these series, so
// an operator sees exactly what the dispatcher sees.
var (
	islandGenSeconds = obs.Default().Histogram(
		"gdsiiguard_cluster_island_generation_seconds",
		"Mean per-generation wall time of island epochs, by executing node.",
		nil, "node")
	islandEpochs = obs.Default().Counter(
		"gdsiiguard_cluster_island_epochs_total",
		"Island epochs executed by outcome (ok, failed, retried, backpressure).",
		"outcome")
	migrationsTotal = obs.Default().Counter(
		"gdsiiguard_cluster_migrations_total",
		"Elite chromosomes migrated between islands.").With()
	nodeHealthy = obs.Default().Gauge(
		"gdsiiguard_cluster_node_healthy",
		"Node health as seen by the coordinator's membership (1 healthy, 0 down).",
		"node")
	nodeInflight = obs.Default().Gauge(
		"gdsiiguard_cluster_node_inflight",
		"Island epochs currently executing on each node.",
		"node")
	exploresTotal = obs.Default().Counter(
		"gdsiiguard_cluster_explorations_total",
		"Distributed explorations by outcome (ok, degraded, failed).",
		"outcome")
	degradedIslands = obs.Default().Counter(
		"gdsiiguard_cluster_islands_degraded_total",
		"Islands lost mid-exploration and degraded away.").With()
)
