package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. The coordinator keys
// it by design (plus island index), so a design's islands keep landing on
// the same workers across explorations — where the design's baseline is
// already cached — and adding or removing a node only remaps the keys
// adjacent to its virtual points instead of reshuffling everything.
//
// Ring is not safe for concurrent use; Membership serializes access.
type Ring struct {
	replicas int
	hashes   []uint64          // sorted virtual points
	owner    map[uint64]string // virtual point → node ID
	nodes    map[string]bool
}

// NewRing creates a ring with the given virtual-node count per node
// (minimum 1; 64 is a good default — ±10% key spread across a handful of
// nodes).
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		nodes:    make(map[string]bool),
	}
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a mixes trailing bytes weakly, so near-identical keys
	// ("design-1", "design-2", ...) land in one narrow arc of the ring and
	// starve most nodes. A 64-bit avalanche finalizer spreads them.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a node's virtual points; adding a present node is a no-op.
func (r *Ring) Add(id string) {
	if r.nodes[id] {
		return
	}
	r.nodes[id] = true
	for i := 0; i < r.replicas; i++ {
		h := hashKey(fmt.Sprintf("%s#%d", id, i))
		if _, taken := r.owner[h]; taken {
			continue // vanishingly rare 64-bit collision: skip the point
		}
		r.owner[h] = id
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Remove deletes a node and its virtual points.
func (r *Ring) Remove(id string) {
	if !r.nodes[id] {
		return
	}
	delete(r.nodes, id)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == id {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Lookup returns the node owning key (the first virtual point at or after
// the key's hash, wrapping), or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key, 1)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns up to n distinct nodes in ring order starting at key's
// successor: the preference order for placing key, so a dispatcher can
// fall through unhealthy or saturated owners deterministically.
func (r *Ring) Sequence(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		id := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	return out
}
