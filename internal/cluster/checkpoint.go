package cluster

import (
	"encoding/json"
	"fmt"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/nsga2"
)

// IslandCheckpoint is one island's continuation state inside an
// EpochCheckpoint.
type IslandCheckpoint struct {
	// Alive reports whether the island had survived up to the checkpoint;
	// a degraded island stays dead across a resume.
	Alive bool `json:"alive"`
	// Seed is the island's next-epoch seed population — the ring
	// neighbor's migrated elites first, then the island's own final
	// population. Unused when the checkpoint's epoch is the final one.
	Seed []core.Params `json:"seed,omitempty"`
}

// EpochCheckpoint is the coordinator's complete continuation state after
// one finished epoch of a distributed exploration: which islands are
// alive, what each one's next seed population is (migration already
// applied), every island front accumulated so far in merge order, and the
// result counters. Resuming an ExploreSpec from it restarts the epoch
// loop at Epoch+1 and — because island seeds derive purely from
// (spec seed, island, epoch) — reproduces exactly the front an
// uninterrupted run computes.
type EpochCheckpoint struct {
	// Seed and Islands fingerprint the spec the checkpoint belongs to;
	// Explore rejects a mismatch instead of silently diverging.
	Seed    int64 `json:"seed"`
	Islands int   `json:"islands"`
	// Epoch is the last completed epoch (0-based); resume restarts the
	// loop at Epoch+1.
	Epoch int `json:"epoch"`
	// States holds every island's alive flag and continuation seed, in
	// island order.
	States []IslandCheckpoint `json:"states"`
	// Fronts accumulates each surviving island epoch's local front, in
	// the deterministic merge order (epoch-major, island-minor).
	Fronts [][]nsga2.Individual `json:"fronts,omitempty"`
	// Evaluations, CacheHits, Failures and Migrations mirror the
	// ExploreResult counters up to the checkpoint.
	Evaluations int `json:"evaluations,omitempty"`
	CacheHits   int `json:"cache_hits,omitempty"`
	Failures    int `json:"failures,omitempty"`
	Migrations  int `json:"migrations,omitempty"`
	// Degraded records islands lost before the checkpoint.
	Degraded []IslandFailure `json:"degraded,omitempty"`
}

// Marshal serializes the checkpoint as JSON (the opaque-blob form the
// service persists in its WAL).
func (c *EpochCheckpoint) Marshal() ([]byte, error) { return json.Marshal(c) }

// UnmarshalEpochCheckpoint decodes a checkpoint produced by Marshal.
func UnmarshalEpochCheckpoint(b []byte) (*EpochCheckpoint, error) {
	var c EpochCheckpoint
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("cluster: undecodable epoch checkpoint: %w", err)
	}
	return &c, nil
}

// validate rejects a checkpoint that does not belong to this exploration's
// resolved parameters.
func (c *EpochCheckpoint) validate(seed int64, islands, epochs int) error {
	if c.Seed != seed {
		return fmt.Errorf("cluster: resume checkpoint seed %d does not match exploration seed %d", c.Seed, seed)
	}
	if c.Islands != islands {
		return fmt.Errorf("cluster: resume checkpoint has %d islands, exploration has %d", c.Islands, islands)
	}
	if len(c.States) != islands {
		return fmt.Errorf("cluster: resume checkpoint has %d island states, want %d", len(c.States), islands)
	}
	if c.Epoch < 0 || c.Epoch >= epochs {
		return fmt.Errorf("cluster: resume checkpoint epoch %d out of range [0, %d)", c.Epoch, epochs)
	}
	alive := 0
	for _, st := range c.States {
		if st.Alive {
			alive++
		}
	}
	if alive == 0 {
		return fmt.Errorf("cluster: resume checkpoint has no surviving islands")
	}
	return nil
}

// makeEpochCheckpoint deep-copies the coordinator state after epoch.
func makeEpochCheckpoint(seed int64, islands, epoch int, states []*islandState, fronts [][]nsga2.Individual, out *ExploreResult) *EpochCheckpoint {
	cp := &EpochCheckpoint{
		Seed:        seed,
		Islands:     islands,
		Epoch:       epoch,
		States:      make([]IslandCheckpoint, islands),
		Fronts:      make([][]nsga2.Individual, len(fronts)),
		Evaluations: out.Evaluations,
		CacheHits:   out.CacheHits,
		Failures:    out.Failures,
		Migrations:  out.Migrations,
	}
	for i, st := range states {
		cp.States[i] = IslandCheckpoint{Alive: st.alive, Seed: cloneParams(st.seed)}
	}
	for i, f := range fronts {
		cp.Fronts[i] = cloneFront(f)
	}
	if len(out.Degraded) > 0 {
		cp.Degraded = append([]IslandFailure(nil), out.Degraded...)
	}
	return cp
}

func cloneParams(ps []core.Params) []core.Params {
	if ps == nil {
		return nil
	}
	out := make([]core.Params, len(ps))
	for i := range ps {
		out[i] = ps[i].Clone()
	}
	return out
}

func cloneFront(f []nsga2.Individual) []nsga2.Individual {
	out := make([]nsga2.Individual, len(f))
	for i := range f {
		out[i] = f[i]
		out[i].Params = f[i].Params.Clone()
	}
	return out
}
