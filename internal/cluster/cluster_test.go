package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/sdc"
)

// testBaseline builds a small synthetic design (inverter chains feeding
// security-critical flops) and evaluates its baseline, mirroring the
// nsga2 package's test fixture.
func testBaseline(t testing.TB, chains, stages int, periodNS float64) *core.Baseline {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("cluster", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	for c := 0; c < chains; c++ {
		in, _ := nl.AddPort(fmt.Sprintf("i%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("pi%d", c))
		_ = nl.ConnectPort(in, prev)
		for s := 0; s < stages; s++ {
			g, err := nl.AddInstance(fmt.Sprintf("c%dg%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			nx, _ := nl.AddNet(fmt.Sprintf("c%dn%d", c, s))
			_ = nl.Connect(g, "A", prev)
			_ = nl.Connect(g, "ZN", nx)
			prev = nx
		}
		ff, _ := nl.AddInstance(fmt.Sprintf("key%d", c), "DFF_X1")
		ff.SecurityCritical = true
		q, _ := nl.AddNet(fmt.Sprintf("q%d", c))
		_ = nl.Connect(ff, "D", prev)
		_ = nl.Connect(ff, "CK", clkNet)
		_ = nl.Connect(ff, "Q", q)
		out, _ := nl.AddPort(fmt.Sprintf("o%d", c), netlist.Out)
		_ = nl.ConnectPort(out, q)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: 0.55, RefinePasses: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cons, _ := sdc.ParseString(fmt.Sprintf("create_clock -name clk -period %g [get_ports clk]\n", periodNS))
	base, err := core.EvalBaseline(l, core.FlowConfig{Constraints: cons, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// sharedLoader serves one pre-built baseline to every worker, so a test
// pays the layout/route/STA cost once.
func sharedLoader(base *core.Baseline) BaselineLoader {
	return func(ctx context.Context, ref DesignRef) (*core.Baseline, error) {
		return base, nil
	}
}

// newLocalCluster assembles an in-process cluster of n workers sharing one
// evaluation budget (the single-binary mode's topology).
func newLocalCluster(t testing.TB, n int, loader BaselineLoader, opts DriverOptions) *Driver {
	t.Helper()
	ms := NewMembership()
	budget := nsga2.NewEvalBudget(4)
	for i := 0; i < n; i++ {
		ms.Add(NewWorker(fmt.Sprintf("local-%d", i), WorkerOptions{
			Loader:      loader,
			Budget:      budget,
			Parallelism: 2,
			MaxIslands:  8,
		}))
	}
	return NewDriver(ms, opts)
}

func testSpec() ExploreSpec {
	return ExploreSpec{
		Design:            DesignRef{Benchmark: "PRESENT"},
		Islands:           3,
		PopSize:           4,
		Generations:       4,
		Seed:              1,
		MigrationInterval: 2,
		MigrationCount:    1,
	}
}

func frontKey(front []nsga2.Individual) string {
	s := ""
	for _, in := range front {
		o := in.Objectives()
		s += fmt.Sprintf("%s|%.9g|%.9g;", in.Params.Key(), o[0], o[1])
	}
	return s
}

// TestExploreDeterministic runs the same exploration twice over a fresh
// cluster each time and expects byte-identical fronts: island seeds derive
// from the spec, evaluations are deterministic, and merge order is island
// order, so node scheduling must not leak into the result.
func TestExploreDeterministic(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	spec := testSpec()
	run := func(workers int) *ExploreResult {
		d := newLocalCluster(t, workers, sharedLoader(base), DriverOptions{})
		res, err := d.Explore(context.Background(), spec)
		if err != nil {
			t.Fatalf("Explore: %v", err)
		}
		return res
	}
	a := run(2)
	b := run(3) // different node count: assignment must not matter
	if len(a.Front) == 0 {
		t.Fatal("empty merged front")
	}
	if frontKey(a.Front) != frontKey(b.Front) {
		t.Errorf("fronts differ across runs:\n a=%s\n b=%s", frontKey(a.Front), frontKey(b.Front))
	}
	if a.Evaluations != b.Evaluations || a.Migrations != b.Migrations {
		t.Errorf("counters differ: evals %d vs %d, migrations %d vs %d",
			a.Evaluations, b.Evaluations, a.Migrations, b.Migrations)
	}
	if a.Migrations == 0 {
		t.Error("no migrations in a multi-epoch run")
	}
	if a.Epochs != 2 {
		t.Errorf("epochs = %d, want 2", a.Epochs)
	}
}

// TestExploreDegradesOnIslandLoss fault-injects the death of one island
// mid-exploration (epoch 2) and expects the coordinator to return the
// surviving islands' merged front plus a typed degradation record, and to
// take the failing node out of rotation.
func TestExploreDegradesOnIslandLoss(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	spec := testSpec()
	// First epoch's |islands| executions pass; the next island execution
	// (epoch 2) dies exactly once.
	fault.Arm(map[fault.Point]fault.Rule{
		fault.ClusterIsland: {Every: 1, After: spec.Islands, Limit: 1, Msg: "island killed"},
	})
	t.Cleanup(fault.Disarm)

	d := newLocalCluster(t, 2, sharedLoader(base), DriverOptions{})
	res, err := d.Explore(context.Background(), spec)
	if err != nil {
		t.Fatalf("Explore with one island lost: %v", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("degraded exploration returned an empty front")
	}
	if len(res.Degraded) != 1 {
		t.Fatalf("degraded = %+v, want exactly one record", res.Degraded)
	}
	deg := res.Degraded[0]
	if deg.Epoch != 1 {
		t.Errorf("degraded epoch = %d, want 1 (second epoch)", deg.Epoch)
	}
	if deg.Island < 0 || deg.Island >= spec.Islands {
		t.Errorf("degraded island = %d out of range", deg.Island)
	}
	if deg.Class != core.ClassPermanent {
		t.Errorf("degraded class = %q, want %q (typed taxonomy preserved)", deg.Class, core.ClassPermanent)
	}
	if deg.Node == "" || deg.Err == "" {
		t.Errorf("degradation record incomplete: %+v", deg)
	}
	// The injected fault is a node-level error (no flow stage), so the
	// executing node must be marked unhealthy.
	unhealthy := 0
	for _, n := range d.Membership().Nodes() {
		if !n.Healthy {
			unhealthy++
		}
	}
	if unhealthy != 1 {
		t.Errorf("unhealthy nodes = %d, want 1", unhealthy)
	}
}

// TestExploreAllIslandsDead verifies that losing every island fails the
// exploration with the underlying causes joined, instead of returning an
// empty front.
func TestExploreAllIslandsDead(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	fault.Arm(map[fault.Point]fault.Rule{
		fault.ClusterIsland: {Every: 1, Msg: "node down"},
	})
	t.Cleanup(fault.Disarm)
	d := newLocalCluster(t, 2, sharedLoader(base), DriverOptions{})
	_, err := d.Explore(context.Background(), testSpec())
	if err == nil {
		t.Fatal("Explore succeeded with every island dead")
	}
	if got := core.Classify(err); got != core.ClassPermanent {
		t.Errorf("all-dead error class = %q, want permanent", got)
	}
}

// TestWorkerSaturation exercises the fail-fast admission control: a worker
// at its island cap rejects new epochs with the transient ErrSaturated
// instead of queueing.
func TestWorkerSaturation(t *testing.T) {
	w := NewWorker("w0", WorkerOptions{MaxIslands: 1, Loader: sharedLoader(nil)})
	w.slots <- struct{}{} // occupy the only slot
	req := IslandRequest{Design: DesignRef{Benchmark: "PRESENT"}, PopSize: 4, Generations: 1}
	_, err := w.RunIsland(context.Background(), req)
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if !core.IsTransient(err) {
		t.Error("ErrSaturated must classify transient (retry elsewhere)")
	}
	if !IsSaturated(err) {
		t.Error("ErrSaturated must report saturation (backpressure, not failure)")
	}
	if d := retryAfterOf(err, 0); d <= 0 {
		t.Errorf("ErrSaturated retry hint = %v, want positive", d)
	}
	<-w.slots
}

// TestDesignRefKeyContentHash guards the cache/ring identity of uploaded
// designs: two DEF layouts of equal byte length but different content must
// never share a key (the key selects which cached baseline a worker
// evaluates against), while identical references key identically.
func TestDesignRefKeyContentHash(t *testing.T) {
	a := DesignRef{DEF: []byte("COMPONENTS 2 ; inst0 INV_X1 100 200"), ClockPS: 500}
	b := DesignRef{DEF: []byte("COMPONENTS 2 ; inst0 INV_X1 100 300"), ClockPS: 500}
	if len(a.DEF) != len(b.DEF) {
		t.Fatal("fixture layouts must have equal length")
	}
	if a.Key() == b.Key() {
		t.Errorf("different DEF contents share key %q", a.Key())
	}
	same := DesignRef{DEF: []byte("COMPONENTS 2 ; inst0 INV_X1 100 200"), ClockPS: 500}
	if a.Key() != same.Key() {
		t.Errorf("identical references key differently: %q vs %q", a.Key(), same.Key())
	}
	if c := (DesignRef{DEF: a.DEF, ClockPS: 600}); c.Key() == a.Key() {
		t.Error("clock change did not change the key")
	}
}

// TestExploreBackpressureOnSaturation runs more islands than the cluster
// has concurrent island slots: excess islands must wait out the saturation
// (Retry-After backpressure) instead of burning their retries and
// degrading, and the front must match an uncontended run of the same spec.
func TestExploreBackpressureOnSaturation(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	spec := testSpec()

	roomy := newLocalCluster(t, 1, sharedLoader(base), DriverOptions{})
	want, err := roomy.Explore(context.Background(), spec)
	if err != nil {
		t.Fatalf("uncontended Explore: %v", err)
	}

	ms := NewMembership()
	ms.Add(NewWorker("tight-0", WorkerOptions{
		Loader:      sharedLoader(base),
		Budget:      nsga2.NewEvalBudget(4),
		Parallelism: 2,
		MaxIslands:  1, // spec.Islands epochs contend for one slot
	}))
	got, err := NewDriver(ms, DriverOptions{}).Explore(context.Background(), spec)
	if err != nil {
		t.Fatalf("saturated Explore: %v", err)
	}
	if len(got.Degraded) != 0 {
		t.Fatalf("islands degraded under pure saturation: %+v", got.Degraded)
	}
	if frontKey(got.Front) != frontKey(want.Front) {
		t.Errorf("saturated front differs from uncontended front:\n got=%s\nwant=%s",
			frontKey(got.Front), frontKey(want.Front))
	}
	for _, n := range ms.Nodes() {
		if !n.Healthy {
			t.Errorf("node %s marked unhealthy by saturation", n.ID)
		}
	}
}

// TestMembershipProbeRejoinRace re-registers a node while probes are in
// flight; the race detector flags any unlocked member.node access.
func TestMembershipProbeRejoinRace(t *testing.T) {
	ms := NewMembership()
	ms.Add(NewWorker("w0", WorkerOptions{Loader: sharedLoader(nil)}))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			ms.Add(NewWorker("w0", WorkerOptions{Loader: sharedLoader(nil)}))
		}
	}()
	for i := 0; i < 50; i++ {
		ms.Probe(context.Background())
	}
	<-done
	if n := ms.Nodes(); len(n) != 1 || !n[0].Healthy {
		t.Errorf("membership after re-join churn = %+v, want one healthy node", n)
	}
}

// TestWorkerBaselineSingleflight checks the per-key load isolation: a slow
// load of one design must not block another design's baseline on the same
// worker, and concurrent requests for one design share a single load.
func TestWorkerBaselineSingleflight(t *testing.T) {
	w := NewWorker("w0", WorkerOptions{})
	slowKey := DesignRef{Benchmark: "TDEA"}.Key()
	release := make(chan struct{})
	w.mu.Lock()
	w.baselines[slowKey] = &baselineEntry{ready: release} // a load in flight
	w.mu.Unlock()

	// A different design resolves while the slow load is still pending.
	fastDone := make(chan error, 1)
	go func() {
		_, err := w.baseline(context.Background(), DesignRef{Benchmark: "PRESENT"})
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("independent design load: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("independent design load blocked behind another design's load")
	}

	// A waiter on the slow design honors cancellation instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	waitDone := make(chan error, 1)
	go func() {
		_, err := w.baseline(ctx, DesignRef{Benchmark: "TDEA"})
		waitDone <- err
	}()
	cancel()
	if err := <-waitDone; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled waiter returned %v, want context.Canceled", err)
	}
	close(release)
}

// TestAcquirePrefersOwnerAndFailsOver checks dispatch: the consistent-hash
// owner is preferred, and an unhealthy owner fails over to another node.
func TestAcquirePrefersOwnerAndFailsOver(t *testing.T) {
	ms := NewMembership()
	w0 := NewWorker("w0", WorkerOptions{Loader: sharedLoader(nil)})
	w1 := NewWorker("w1", WorkerOptions{Loader: sharedLoader(nil)})
	ms.Add(w0)
	ms.Add(w1)

	const key = "bench:PRESENT#island-0"
	n1, rel1, err := ms.Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	owner := n1.ID()
	rel1(0, nil)
	// Same key, idle cluster: same owner (cache affinity).
	n2, rel2, err := ms.Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	if n2.ID() != owner {
		t.Errorf("owner moved from %s to %s with no load", owner, n2.ID())
	}
	// A node-level failure takes the owner out of rotation.
	rel2(0, errors.New("connection refused"))
	n3, rel3, err := ms.Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	if n3.ID() == owner {
		t.Errorf("unhealthy owner %s still dispatched", owner)
	}
	rel3(0, nil)
	// A flow-stage failure must NOT mark the node unhealthy.
	n4, rel4, err := ms.Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	rel4(0, &core.FlowError{Stage: core.StageRoute, Class: core.ClassPermanent, Err: errors.New("bad chromosome")})
	healthy := 0
	for _, n := range ms.Nodes() {
		if n.Healthy {
			healthy++
		}
	}
	if healthy != 1 {
		t.Errorf("healthy = %d, want 1 (stage failures keep the node, node failures do not)", healthy)
	}
	_ = n4
	if _, _, err := ms.Acquire(key); err != nil {
		t.Fatalf("one healthy node left, Acquire failed: %v", err)
	}
	ms.Remove("w0")
	ms.Remove("w1")
	if _, _, err := ms.Acquire(key); !errors.Is(err, ErrNoNodes) {
		t.Errorf("err = %v, want ErrNoNodes", err)
	}
}

// TestClusterDominatesSingleNode is the acceptance check: a 4-island
// PRESENT exploration, on no more total evaluations than a single-node
// run, produces a merged front that dominates-or-equals the single-node
// front (every single-node front point is weakly dominated by some merged
// point).
func TestClusterDominatesSingleNode(t *testing.T) {
	ref := DesignRef{Benchmark: "PRESENT"}
	base, err := loadBaseline(ref)
	if err != nil {
		t.Fatal(err)
	}

	d := newLocalCluster(t, 4, sharedLoader(base), DriverOptions{})
	res, err := d.Explore(context.Background(), ExploreSpec{
		Design:      ref,
		Islands:     4,
		PopSize:     4,
		Generations: 2,
		// The seed pins this acceptance configuration to the current
		// evaluation landscape; it was re-picked when the router's
		// congestion pricing changed the metric surface under it.
		Seed:              9,
		MigrationInterval: 1,
		MigrationCount:    2,
	})
	if err != nil {
		t.Fatalf("cluster Explore: %v", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty merged front")
	}

	single, err := nsga2.OptimizeCtx(context.Background(), base, nsga2.Options{
		PopSize:     12,
		Generations: 8,
		Patience:    -1,
		Seed:        1,
		Parallelism: 4,
	})
	if err != nil {
		t.Fatalf("single-node Optimize: %v", err)
	}

	// Same total budget: the cluster must not have spent more evaluations
	// than the single-node run it claims to beat.
	if res.Evaluations > len(single.Evaluations) {
		t.Fatalf("cluster spent %d evaluations > single-node %d; budget comparison invalid",
			res.Evaluations, len(single.Evaluations))
	}
	t.Logf("cluster: %d evals, front %d; single: %d evals, front %d",
		res.Evaluations, len(res.Front), len(single.Evaluations), len(single.Front))

	for _, s := range single.Front {
		so := s.Objectives()
		covered := false
		for _, c := range res.Front {
			co := c.Objectives()
			if co[0] <= so[0] && co[1] <= so[1] {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("single-node point %s (%v) not dominated-or-equaled by merged front",
				s.Params.Key(), so)
		}
	}
}

// TestExploreResumeDeterministic is the coordinator half of the crash-safe
// contract: resuming an exploration from any of its own epoch checkpoints
// must reproduce the uninterrupted run's merged front and counters exactly,
// because island seeds derive from (spec seed, island, epoch) and the
// checkpoint captures the post-migration continuation state.
func TestExploreResumeDeterministic(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	spec := testSpec()

	var cps []*EpochCheckpoint
	cspec := spec
	cspec.Checkpoint = func(cp *EpochCheckpoint) error {
		cps = append(cps, cp)
		return nil
	}
	d := newLocalCluster(t, 2, sharedLoader(base), DriverOptions{})
	golden, err := d.Explore(context.Background(), cspec)
	if err != nil {
		t.Fatalf("golden Explore: %v", err)
	}
	if len(cps) != golden.Epochs {
		t.Fatalf("captured %d epoch checkpoints, want %d", len(cps), golden.Epochs)
	}

	for _, cp := range cps {
		cp := cp
		t.Run(fmt.Sprintf("resume-from-epoch-%d", cp.Epoch), func(t *testing.T) {
			// Round-trip through the serialized form the service persists.
			blob, err := cp.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			restored, err := UnmarshalEpochCheckpoint(blob)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			rspec := spec
			rspec.Resume = restored
			// A fresh cluster with a different node count: the resume must
			// not depend on node assignment either.
			rd := newLocalCluster(t, 3, sharedLoader(base), DriverOptions{})
			resumed, err := rd.Explore(context.Background(), rspec)
			if err != nil {
				t.Fatalf("resumed Explore: %v", err)
			}
			if frontKey(resumed.Front) != frontKey(golden.Front) {
				t.Errorf("resumed front diverged:\n got %s\nwant %s",
					frontKey(resumed.Front), frontKey(golden.Front))
			}
			if resumed.Evaluations != golden.Evaluations ||
				resumed.Migrations != golden.Migrations ||
				resumed.Epochs != golden.Epochs {
				t.Errorf("counters diverged: evals %d/%d, migrations %d/%d, epochs %d/%d",
					resumed.Evaluations, golden.Evaluations,
					resumed.Migrations, golden.Migrations,
					resumed.Epochs, golden.Epochs)
			}
		})
	}
}

func TestExploreResumeRejectsMismatch(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	spec := testSpec()
	var cps []*EpochCheckpoint
	cspec := spec
	cspec.Checkpoint = func(cp *EpochCheckpoint) error { cps = append(cps, cp); return nil }
	d := newLocalCluster(t, 2, sharedLoader(base), DriverOptions{})
	if _, err := d.Explore(context.Background(), cspec); err != nil {
		t.Fatal(err)
	}
	cp := cps[0]

	for name, mutate := range map[string]func(*ExploreSpec){
		"seed":    func(s *ExploreSpec) { s.Seed = 99 },
		"islands": func(s *ExploreSpec) { s.Islands = 2 },
	} {
		bad := spec
		mutate(&bad)
		bad.Resume = cp
		if _, err := d.Explore(context.Background(), bad); err == nil {
			t.Errorf("resume with mismatched %s accepted", name)
		}
	}
}

func TestExploreCheckpointErrorAborts(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	spec := testSpec()
	boom := errors.New("wal gone")
	spec.Checkpoint = func(cp *EpochCheckpoint) error { return boom }
	d := newLocalCluster(t, 2, sharedLoader(base), DriverOptions{})
	if _, err := d.Explore(context.Background(), spec); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint failure", err)
	}
}
