package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/obs"
)

// DriverOptions are the coordinator-side exploration defaults; an
// ExploreSpec overrides any of them per request.
type DriverOptions struct {
	// Islands is the default island count (default 4).
	Islands int
	// PopSize is the default per-island population size (default 8).
	PopSize int
	// Generations is the default total generation count (default 8).
	Generations int
	// MigrationInterval is how many generations an island runs per epoch
	// before elites migrate (default 2).
	MigrationInterval int
	// MigrationCount is how many elites migrate to the ring neighbor after
	// each epoch (default 2).
	MigrationCount int
	// IslandRetries is how many times a transiently failed island epoch is
	// re-dispatched (on a fresh node pick) before the island degrades
	// (default 1; negative disables).
	IslandRetries int
	// SaturationWait bounds how long one island epoch waits, across
	// re-dispatches, for cluster capacity when every eligible node reports
	// saturation. Saturation is backpressure, not failure: the driver
	// sleeps out each node's Retry-After hint and re-dispatches without
	// burning the island's retry budget, so islands beyond the cluster's
	// instantaneous capacity queue instead of degrading. Past this bound a
	// saturated dispatch counts as an ordinary transient failure (default
	// 10m; negative disables waiting).
	SaturationWait time.Duration
}

func (o DriverOptions) withDefaults() DriverOptions {
	if o.Islands <= 0 {
		o.Islands = 4
	}
	if o.PopSize <= 0 {
		o.PopSize = 8
	}
	if o.Generations <= 0 {
		o.Generations = 8
	}
	if o.MigrationInterval <= 0 {
		o.MigrationInterval = 2
	}
	if o.MigrationCount <= 0 {
		o.MigrationCount = 2
	}
	if o.IslandRetries == 0 {
		o.IslandRetries = 1
	} else if o.IslandRetries < 0 {
		o.IslandRetries = 0
	}
	if o.SaturationWait == 0 {
		o.SaturationWait = 10 * time.Minute
	} else if o.SaturationWait < 0 {
		o.SaturationWait = 0
	}
	return o
}

// Driver runs island-model NSGA-II explorations over a Membership: every
// epoch it fans the alive islands out to nodes (consistent-hashed by
// design and island, load-aware), collects the per-island fronts and
// continuation populations, migrates elites around the island ring, and
// finally merges the accumulated fronts into one deduplicated Pareto
// front.
//
// Degradation: an island whose epoch fails transiently is retried on a
// fresh node pick; one that fails permanently (or exhausts retries) is
// dropped with an IslandFailure record carrying the typed stage/class
// taxonomy, and the exploration continues on the survivors. Only losing
// every island fails the exploration.
type Driver struct {
	ms   *Membership
	opts DriverOptions
}

// NewDriver creates a driver over the membership.
func NewDriver(ms *Membership, opts DriverOptions) *Driver {
	return &Driver{ms: ms, opts: opts.withDefaults()}
}

// Membership returns the driver's node membership.
func (d *Driver) Membership() *Membership { return d.ms }

// islandState is the coordinator's per-island continuation state.
type islandState struct {
	alive bool
	seed  []core.Params // next epoch's seed population (migrants first)
}

// Explore runs one distributed exploration. The result is deterministic
// for a given spec: island seeds derive from (spec.Seed, island, epoch),
// flow evaluations are deterministic, and merge order is island order —
// node assignment and goroutine interleaving never influence the front.
func (d *Driver) Explore(ctx context.Context, spec ExploreSpec) (*ExploreResult, error) {
	if err := spec.Design.Validate(); err != nil {
		return nil, err
	}
	islands := spec.Islands
	if islands <= 0 {
		islands = d.opts.Islands
	}
	popSize := spec.PopSize
	if popSize <= 0 {
		popSize = d.opts.PopSize
	}
	generations := spec.Generations
	if generations <= 0 {
		generations = d.opts.Generations
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	interval := spec.MigrationInterval
	if interval <= 0 {
		interval = d.opts.MigrationInterval
	}
	migrate := spec.MigrationCount
	if migrate <= 0 {
		migrate = d.opts.MigrationCount
	}
	epochs := (generations + interval - 1) / interval

	start := time.Now()
	states := make([]*islandState, islands)
	for i := range states {
		states[i] = &islandState{alive: true}
	}
	out := &ExploreResult{Islands: islands}
	var fronts [][]nsga2.Individual

	startEpoch := 0
	if cp := spec.Resume; cp != nil {
		if err := cp.validate(seed, islands, epochs); err != nil {
			return nil, err
		}
		startEpoch = cp.Epoch + 1
		for i := range states {
			states[i].alive = cp.States[i].Alive
			states[i].seed = cloneParams(cp.States[i].Seed)
		}
		fronts = make([][]nsga2.Individual, len(cp.Fronts))
		for i, f := range cp.Fronts {
			fronts[i] = cloneFront(f)
		}
		out.Evaluations = cp.Evaluations
		out.CacheHits = cp.CacheHits
		out.Failures = cp.Failures
		out.Migrations = cp.Migrations
		out.Degraded = append([]IslandFailure(nil), cp.Degraded...)
	}

	for epoch := startEpoch; epoch < epochs; epoch++ {
		// Crash point: the coordinator dies between epochs. A durable
		// per-epoch checkpoint must let the restarted coordinator resume at
		// exactly this epoch instead of re-running the exploration.
		if err := fault.Hit(fault.ClusterEpoch); err != nil {
			return nil, fmt.Errorf("cluster: epoch %d: %w", epoch, err)
		}
		gens := interval
		if rem := generations - epoch*interval; rem < gens {
			gens = rem
		}
		results := make([]*IslandResult, islands)
		errs := make([]error, islands)
		var wg sync.WaitGroup
		for i := 0; i < islands; i++ {
			if !states[i].alive {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				req := IslandRequest{
					Design:      spec.Design,
					Island:      i,
					Epoch:       epoch,
					PopSize:     popSize,
					Generations: gens,
					// One seed per (exploration, island, epoch): primes keep
					// distinct islands and epochs from colliding.
					Seed:    seed + int64(i)*1_000_003 + int64(epoch)*7919,
					SeedPop: states[i].seed,
				}
				results[i], errs[i] = d.runIsland(ctx, req)
			}(i)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		survivors := 0
		for i := 0; i < islands; i++ {
			if !states[i].alive {
				continue
			}
			if errs[i] != nil {
				states[i].alive = false
				node := ""
				var down *nodeError
				if errors.As(errs[i], &down) {
					node = down.node
				}
				out.Degraded = append(out.Degraded, IslandFailure{
					Island: i,
					Node:   node,
					Epoch:  epoch,
					Stage:  core.StageOf(errs[i]),
					Class:  core.Classify(errs[i]),
					Err:    errs[i].Error(),
				})
				degradedIslands.Inc()
				obs.Logger().Warn("cluster: island degraded",
					"island", i, "epoch", epoch, "node", node,
					"stage", core.StageOf(errs[i]), "class", core.Classify(errs[i]),
					"error", errs[i])
				continue
			}
			survivors++
			res := results[i]
			fronts = append(fronts, res.Front)
			out.Evaluations += res.Evaluations
			out.CacheHits += res.CacheHits
			out.Failures += len(res.Failures)
			out.Delta.Add(res.Delta)
		}
		if survivors == 0 {
			exploresTotal.With("failed").Inc()
			var causes []error
			for _, e := range errs {
				if e != nil {
					causes = append(causes, e)
				}
			}
			return nil, fmt.Errorf("cluster: every island failed in epoch %d: %w",
				epoch, errors.Join(causes...))
		}

		// Ring migration into the next epoch: each surviving island sends
		// its elites to the next surviving island clockwise; the receiver's
		// seed is migrants first (guaranteed inclusion), then its own final
		// population. Skipped after the final epoch (no next epoch to seed).
		if epoch < epochs-1 {
			for i := 0; i < islands; i++ {
				if !states[i].alive {
					continue
				}
				states[i].seed = append([]core.Params(nil), results[i].Population...)
			}
			if survivors > 1 && migrate > 0 {
				for i := 0; i < islands; i++ {
					if !states[i].alive {
						continue
					}
					next := d.nextAlive(states, i)
					if next == i {
						continue
					}
					elites := nsga2.Elites(results[i].Front, migrate)
					states[next].seed = append(append([]core.Params(nil), elites...), states[next].seed...)
					out.Migrations += len(elites)
					migrationsTotal.Add(float64(len(elites)))
				}
			}
		}

		// Checkpoint after migration, so the captured island seeds are
		// exactly what the next epoch would run with.
		if spec.Checkpoint != nil {
			cp := makeEpochCheckpoint(seed, islands, epoch, states, fronts, out)
			if err := spec.Checkpoint(cp); err != nil {
				return nil, fmt.Errorf("cluster: checkpoint after epoch %d: %w", epoch, err)
			}
		}
	}

	out.Epochs = epochs
	out.Front = nsga2.MergeFronts(fronts...)
	out.Elapsed = time.Since(start)
	if len(out.Degraded) > 0 {
		exploresTotal.With("degraded").Inc()
	} else {
		exploresTotal.With("ok").Inc()
	}
	obs.Logger().Info("cluster: exploration complete",
		"islands", islands, "epochs", epochs, "front", len(out.Front),
		"evaluations", out.Evaluations, "migrations", out.Migrations,
		"degraded", len(out.Degraded), "elapsed", out.Elapsed)
	return out, nil
}

// nextAlive returns the next surviving island clockwise from i (i itself
// when it is the only survivor).
func (d *Driver) nextAlive(states []*islandState, i int) int {
	for step := 1; step <= len(states); step++ {
		j := (i + step) % len(states)
		if states[j].alive {
			return j
		}
	}
	return i
}

// nodeError attributes an island failure to the node that executed it.
type nodeError struct {
	node string
	err  error
}

func (e *nodeError) Error() string { return fmt.Sprintf("node %s: %v", e.node, e.err) }
func (e *nodeError) Unwrap() error { return e.err }

// runIsland dispatches one island epoch through membership. Saturation is
// backpressure: the driver sleeps out the node's Retry-After hint and
// re-dispatches, without consuming the retry budget, until SaturationWait
// is exhausted. Other transient failures retry on a fresh node pick.
func (d *Driver) runIsland(ctx context.Context, req IslandRequest) (*IslandResult, error) {
	key := fmt.Sprintf("%s#island-%d", req.Design.Key(), req.Island)
	var lastErr error
	var waited time.Duration
	for retries := 0; ; {
		node, release, err := d.ms.Acquire(key)
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (after: %w)", err, lastErr)
			}
			return nil, err
		}
		start := time.Now()
		res, err := node.RunIsland(ctx, req)
		release(time.Since(start), err)
		if err == nil {
			islandEpochs.With("ok").Inc()
			return res, nil
		}
		lastErr = &nodeError{node: node.ID(), err: err}
		if ctx.Err() != nil {
			return nil, lastErr
		}
		if IsSaturated(err) {
			if delay := retryAfterOf(err, 50*time.Millisecond); waited+delay <= d.opts.SaturationWait {
				islandEpochs.With("backpressure").Inc()
				select {
				case <-ctx.Done():
					return nil, lastErr
				case <-time.After(delay):
				}
				waited += delay
				continue
			}
		}
		if retries < d.opts.IslandRetries && core.IsTransient(err) {
			retries++
			islandEpochs.With("retried").Inc()
			continue
		}
		islandEpochs.With("failed").Inc()
		return nil, lastErr
	}
}
