package cluster

import (
	"fmt"
	"testing"
)

func TestRingLookupStableAndComplete(t *testing.T) {
	r := NewRing(64)
	if owner := r.Lookup("x"); owner != "" {
		t.Error("Lookup on an empty ring returned an owner")
	}
	nodes := []string{"a", "b", "c"}
	for _, n := range nodes {
		r.Add(n)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	owners := map[string]string{}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("design-%d", i)
		owner := r.Lookup(key)
		if owner == "" {
			t.Fatalf("no owner for %s", key)
		}
		owners[key] = owner
		counts[owner]++
	}
	// Every node owns a share (64 virtual points make starvation a bug,
	// not bad luck).
	for _, n := range nodes {
		if counts[n] == 0 {
			t.Errorf("node %s owns no keys: %v", n, counts)
		}
	}
	// Lookups are stable.
	for key, want := range owners {
		if got := r.Lookup(key); got != want {
			t.Errorf("Lookup(%s) moved %s -> %s with no membership change", key, want, got)
		}
	}
	// Removing one node only moves that node's keys.
	r.Remove("b")
	for key, was := range owners {
		got := r.Lookup(key)
		if got == "" {
			t.Fatalf("no owner for %s after removal", key)
		}
		if was != "b" && got != was {
			t.Errorf("key %s moved %s -> %s though only b was removed", key, was, got)
		}
		if got == "b" {
			t.Errorf("key %s still owned by removed node", key)
		}
	}
}

func TestRingSequenceDistinct(t *testing.T) {
	r := NewRing(16)
	for _, n := range []string{"a", "b", "c", "d"} {
		r.Add(n)
	}
	seq := r.Sequence("some-design", 4)
	if len(seq) != 4 {
		t.Fatalf("Sequence len = %d, want 4", len(seq))
	}
	seen := map[string]bool{}
	for _, id := range seq {
		if seen[id] {
			t.Fatalf("duplicate node %s in sequence %v", id, seq)
		}
		seen[id] = true
	}
	// First element agrees with Lookup.
	if owner := r.Lookup("some-design"); owner != seq[0] {
		t.Errorf("Sequence head %s != Lookup owner %s", seq[0], owner)
	}
	// Asking for more than exists returns everyone once.
	if got := r.Sequence("some-design", 99); len(got) != 4 {
		t.Errorf("over-asked Sequence len = %d, want 4", len(got))
	}
}
