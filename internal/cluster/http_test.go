package cluster

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gdsiiguard/internal/core"
)

// newWorkerServer serves a cluster worker plus the health endpoints a real
// guardd worker exposes (Ping probes them).
func newWorkerServer(t *testing.T, w *Worker) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("POST /v1/cluster/island", NewWorkerHandler(w))
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, map[string]any{"ready": true})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestHTTPNodeRoundTrip runs the same island epoch in-process and over
// HTTP and expects identical results: the transport must not perturb the
// serialized populations, fronts or counters.
func TestHTTPNodeRoundTrip(t *testing.T) {
	base := testBaseline(t, 3, 10, 5)
	w := NewWorker("w0", WorkerOptions{Loader: sharedLoader(base), Parallelism: 2})
	srv := newWorkerServer(t, w)
	node := NewHTTPNode("w0", srv.URL, nil)

	if err := node.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	req := IslandRequest{
		Design:      DesignRef{Benchmark: "PRESENT"},
		Island:      1,
		PopSize:     4,
		Generations: 2,
		Seed:        7,
	}
	direct, err := NewWorker("w0", WorkerOptions{Loader: sharedLoader(base), Parallelism: 2}).
		RunIsland(context.Background(), req)
	if err != nil {
		t.Fatalf("direct RunIsland: %v", err)
	}
	remote, err := node.RunIsland(context.Background(), req)
	if err != nil {
		t.Fatalf("HTTP RunIsland: %v", err)
	}
	if frontKey(direct.Front) != frontKey(remote.Front) {
		t.Errorf("front changed across transport:\n direct=%s\n remote=%s",
			frontKey(direct.Front), frontKey(remote.Front))
	}
	if len(direct.Population) != len(remote.Population) {
		t.Fatalf("population size changed: %d vs %d", len(direct.Population), len(remote.Population))
	}
	for i := range direct.Population {
		if direct.Population[i].Key() != remote.Population[i].Key() {
			t.Errorf("population[%d] changed: %s vs %s",
				i, direct.Population[i].Key(), remote.Population[i].Key())
		}
	}
	if direct.Evaluations != remote.Evaluations {
		t.Errorf("evaluations changed: %d vs %d", direct.Evaluations, remote.Evaluations)
	}
}

// TestHTTPTypedErrorPreserved sends a request whose worker-side failure
// carries the flow taxonomy and expects the client to reconstruct it:
// stage and class must survive the HTTP boundary.
func TestHTTPTypedErrorPreserved(t *testing.T) {
	w := NewWorker("w0", WorkerOptions{
		Loader: func(ctx context.Context, ref DesignRef) (*core.Baseline, error) {
			return nil, &core.FlowError{
				Stage: core.StageRoute,
				Class: core.ClassPermanent,
				Err:   errors.New("routing blew up"),
			}
		},
	})
	srv := newWorkerServer(t, w)
	node := NewHTTPNode("w0", srv.URL, nil)
	_, err := node.RunIsland(context.Background(),
		IslandRequest{Design: DesignRef{Benchmark: "PRESENT"}, PopSize: 4, Generations: 1})
	if err == nil {
		t.Fatal("RunIsland succeeded with a failing loader")
	}
	if got := core.StageOf(err); got != core.StageRoute {
		t.Errorf("stage = %q, want %q", got, core.StageRoute)
	}
	if got := core.Classify(err); got != core.ClassPermanent {
		t.Errorf("class = %q, want %q", got, core.ClassPermanent)
	}
	if core.IsTransient(err) {
		t.Error("permanent flow error classified transient after transport")
	}
}

// TestHTTPSaturation fills the worker's only island slot and expects 503 +
// Retry-After on the wire and a transient error at the client.
func TestHTTPSaturation(t *testing.T) {
	w := NewWorker("w0", WorkerOptions{Loader: sharedLoader(nil), MaxIslands: 1})
	w.slots <- struct{}{}
	defer func() { <-w.slots }()
	srv := newWorkerServer(t, w)

	body := `{"design":{"benchmark":"PRESENT"},"pop_size":4,"generations":1}`
	resp, err := http.Post(srv.URL+"/v1/cluster/island", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	node := NewHTTPNode("w0", srv.URL, nil)
	_, err = node.RunIsland(context.Background(),
		IslandRequest{Design: DesignRef{Benchmark: "PRESENT"}, PopSize: 4, Generations: 1})
	if err == nil {
		t.Fatal("RunIsland succeeded against a saturated worker")
	}
	if !core.IsTransient(err) {
		t.Errorf("saturation not transient at the client: %v", err)
	}
	if !IsSaturated(err) {
		t.Errorf("saturation lost across the HTTP boundary: %v", err)
	}
	if d := retryAfterOf(err, 0); d != 2*time.Second {
		t.Errorf("Retry-After hint = %v across the HTTP boundary, want 2s", d)
	}
}

// TestDecodeTypedErrorRetryAfter checks the saturation decode path: a 503
// keeps its saturation marker and Retry-After hint, malformed hints fall
// back to the wire default, and non-503 transients carry neither.
func TestDecodeTypedErrorRetryAfter(t *testing.T) {
	err := decodeTypedError(http.StatusServiceUnavailable,
		[]byte(`{"error":"busy","transient":true}`), "7")
	if !IsSaturated(err) || !core.IsTransient(err) {
		t.Errorf("503 decoded as %v, want saturated+transient", err)
	}
	if d := retryAfterOf(err, 0); d != 7*time.Second {
		t.Errorf("Retry-After 7 decoded as %v", d)
	}
	if d := retryAfterOf(decodeTypedError(http.StatusServiceUnavailable, nil, "soon"), 0); d != 2*time.Second {
		t.Errorf("malformed Retry-After decoded as %v, want 2s default", d)
	}
	plain := decodeTypedError(http.StatusBadGateway, []byte(`{"error":"boom","transient":true}`), "")
	if IsSaturated(plain) {
		t.Errorf("non-503 transient decoded as saturated: %v", plain)
	}
}

// TestHTTPBoundedBody shrinks the island body cap and expects an oversized
// request to be rejected with 400 instead of being buffered.
func TestHTTPBoundedBody(t *testing.T) {
	old := maxIslandBody
	maxIslandBody = 256
	t.Cleanup(func() { maxIslandBody = old })

	w := NewWorker("w0", WorkerOptions{Loader: sharedLoader(nil)})
	srv := newWorkerServer(t, w)
	big := `{"design":{"def":"` + strings.Repeat("x", 1024) + `"}}`
	resp, err := http.Post(srv.URL+"/v1/cluster/island", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400 for oversized body", resp.StatusCode)
	}
}

// TestHTTPBadRequests covers malformed island bodies and invalid specs.
func TestHTTPBadRequests(t *testing.T) {
	w := NewWorker("w0", WorkerOptions{Loader: sharedLoader(nil)})
	srv := newWorkerServer(t, w)
	for name, body := range map[string]string{
		"not json":      `{{{`,
		"unknown field": `{"bogus":1}`,
		"invalid spec":  `{"design":{"benchmark":"PRESENT"},"pop_size":1,"generations":1}`,
		"no design":     `{"pop_size":4,"generations":1}`,
	} {
		resp, err := http.Post(srv.URL+"/v1/cluster/island", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestJoinRejectsUnknownNode expects the coordinator to refuse a join it
// cannot probe back (502), keep membership clean, and accept a reachable
// worker.
func TestJoinRejectsUnknownNode(t *testing.T) {
	ms := NewMembership()
	coord := httptest.NewServer(NewCoordinatorHandler(ms))
	t.Cleanup(coord.Close)

	// A dead advertise URL: grab a port and close it again.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(coord.URL+"/v1/cluster/join", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post(`{"id":"ghost","url":"` + deadURL + `"}`); resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable join status = %d, want 502", resp.StatusCode)
	}
	if resp := post(`{"id":"","url":"http://x"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty-id join status = %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"id":"w","url":"not a url"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-url join status = %d, want 400", resp.StatusCode)
	}
	if ms.Len() != 0 {
		t.Fatalf("membership = %d after rejected joins, want 0", ms.Len())
	}

	// A real worker joins fine and shows up in the node listing.
	worker := newWorkerServer(t, NewWorker("w1", WorkerOptions{Loader: sharedLoader(nil)}))
	if err := JoinCoordinator(context.Background(), coord.URL, "w1", worker.URL); err != nil {
		t.Fatalf("JoinCoordinator: %v", err)
	}
	if ms.Len() != 1 {
		t.Fatalf("membership = %d after join, want 1", ms.Len())
	}
	resp, err := http.Get(coord.URL + "/v1/cluster/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), `"w1"`) {
		t.Errorf("nodes listing = %d %s, want 200 containing w1", resp.StatusCode, buf.String())
	}
}
