// Package power is the power analysis engine: total power is the sum of
// leakage (every instance, fillers included), internal switching energy of
// functional cells, and net switching power 0.5·α·C·V²·f with wire
// capacitance taken from the routed lengths under the active NDR.
//
// Fill-based defenses (BISA, Ba et al.) add cells, so leakage and internal
// power rise; Routing Width Scaling raises wire capacitance, so switching
// power rises: the model responds to every knob the defenses turn.
package power

import (
	"fmt"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
)

// Options configures a power analysis run.
type Options struct {
	// Constraints supplies the clock frequency (required).
	Constraints *sdc.Constraints
	// Routes supplies wire lengths; when nil, HPWL on EstimateLayer is used.
	Routes *route.Result
	// Activity is the average toggle rate per clock cycle (default 0.15).
	Activity float64
	// EstimateLayer is the metal used for HPWL wire-cap estimation
	// (default 3).
	EstimateLayer int
}

// Result is a power report in milliwatts.
type Result struct {
	LeakageMW   float64
	InternalMW  float64
	SwitchingMW float64
	TotalMW     float64
}

// String implements fmt.Stringer.
func (r Result) String() string {
	return fmt.Sprintf("total %.3f mW (leak %.3f, int %.3f, sw %.3f)",
		r.TotalMW, r.LeakageMW, r.InternalMW, r.SwitchingMW)
}

// Analyze computes the power of the placed (and optionally routed) layout.
func Analyze(l *layout.Layout, opt Options) (Result, error) {
	if opt.Constraints == nil || opt.Constraints.PrimaryClock() == nil {
		return Result{}, fmt.Errorf("power: no clock constraint")
	}
	if opt.Activity <= 0 {
		opt.Activity = 0.15
	}
	if opt.EstimateLayer <= 0 {
		opt.EstimateLayer = 3
	}
	lib := l.Lib()
	fGHz := 1000.0 / opt.Constraints.PrimaryClock().PeriodPS // ps -> GHz
	var res Result

	for _, in := range l.Netlist.Insts {
		// nW -> mW
		res.LeakageMW += in.Master.Leakage * 1e-6
		if in.Master.IsFunctional() {
			// fJ per toggle × toggles/s: α·f(GHz)·E(fJ) => 1e9·1e-15 J/s
			// = 1e-6 W = 1e-3 mW.
			res.InternalMW += opt.Activity * fGHz * in.Master.InternalEnergy * 1e-3
		}
	}

	vdd2 := lib.Vdd * lib.Vdd
	for _, n := range l.Netlist.Nets {
		c := netCapFF(l, n, opt)
		act := opt.Activity
		if n.IsClock {
			act = 1.0 // clock toggles every cycle (twice, folded into C model)
		}
		// 0.5·α·C(fF)·V²·f(GHz): 1e-15 F × 1e9 /s = 1e-6 W = 1e-3 mW.
		res.SwitchingMW += 0.5 * act * c * vdd2 * fGHz * 1e-3
	}
	res.TotalMW = res.LeakageMW + res.InternalMW + res.SwitchingMW
	return res, nil
}

// netCapFF returns the net's total capacitance in fF: sink pin caps plus
// wire capacitance under the active NDR.
func netCapFF(l *layout.Layout, n *netlist.Net, opt Options) float64 {
	lib := l.Lib()
	c := 0.0
	for _, s := range n.Sinks {
		if s.IsPort() {
			c += 2.0
			continue
		}
		if p := s.Inst.Master.Pin(s.Pin); p != nil {
			c += p.Cap
		}
	}
	if opt.Routes != nil && n.ID < len(opt.Routes.NetRoutes) && opt.Routes.NetRoutes[n.ID] != nil {
		nr := opt.Routes.NetRoutes[n.ID]
		for metal := 1; metal < len(nr.LenByMetal); metal++ {
			if nr.LenByMetal[metal] == 0 {
				continue
			}
			layer := lib.Layer(metal)
			scale := l.NDR.LayerScale(metal)
			c += lib.DBUToMicrons(nr.LenByMetal[metal]) * layer.CPerUM * (0.7 + 0.3*scale)
		}
	} else {
		layer := lib.Layer(opt.EstimateLayer)
		scale := l.NDR.LayerScale(layer.Index)
		c += lib.DBUToMicrons(l.NetHPWL(n)) * layer.CPerUM * (0.7 + 0.3*scale)
	}
	return c
}
