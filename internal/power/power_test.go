package power

import (
	"fmt"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sdc"
)

func chain(t testing.TB, n int) *layout.Layout {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("p", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	in, _ := nl.AddPort("a", netlist.In)
	prev, _ := nl.AddNet("na")
	_ = nl.ConnectPort(in, prev)
	for i := 0; i < n; i++ {
		g, err := nl.AddInstance(fmt.Sprintf("g%d", i), "INV_X1")
		if err != nil {
			t.Fatal(err)
		}
		nx, _ := nl.AddNet(fmt.Sprintf("n%d", i))
		_ = nl.Connect(g, "A", prev)
		_ = nl.Connect(g, "ZN", nx)
		prev = nx
	}
	ff, _ := nl.AddInstance("ff", "DFF_X1")
	q, _ := nl.AddNet("q")
	_ = nl.Connect(ff, "D", prev)
	_ = nl.Connect(ff, "CK", clkNet)
	_ = nl.Connect(ff, "Q", q)
	out, _ := nl.AddPort("y", netlist.Out)
	_ = nl.ConnectPort(out, q)
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func cons(periodNS float64) *sdc.Constraints {
	c, _ := sdc.ParseString(fmt.Sprintf("create_clock -name clk -period %g [get_ports clk]\n", periodNS))
	return c
}

func TestPowerComponents(t *testing.T) {
	l := chain(t, 50)
	r, err := Analyze(l, Options{Constraints: cons(2)})
	if err != nil {
		t.Fatal(err)
	}
	if r.LeakageMW <= 0 || r.InternalMW <= 0 || r.SwitchingMW <= 0 {
		t.Errorf("non-positive component: %+v", r)
	}
	if tot := r.LeakageMW + r.InternalMW + r.SwitchingMW; tot != r.TotalMW {
		t.Errorf("total %g != sum %g", r.TotalMW, tot)
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	l := chain(t, 50)
	slow, err := Analyze(l, Options{Constraints: cons(4)})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Analyze(l, Options{Constraints: cons(1)})
	if err != nil {
		t.Fatal(err)
	}
	if fast.SwitchingMW <= slow.SwitchingMW {
		t.Error("switching power should rise with frequency")
	}
	if fast.LeakageMW != slow.LeakageMW {
		t.Error("leakage should not depend on frequency")
	}
}

func TestFillersAddLeakageOnly(t *testing.T) {
	l := chain(t, 30)
	base, err := Analyze(l, Options{Constraints: cons(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f, err := l.Netlist.AddInstance(fmt.Sprintf("fill%d", i), "FILLCELL_X1")
		if err != nil {
			t.Fatal(err)
		}
		placed := false
		for r := 0; r < l.NumRows && !placed; r++ {
			for _, run := range l.FreeRuns(r) {
				if run.Len >= 1 {
					if err := l.Place(f, r, run.Start); err == nil {
						placed = true
						break
					}
				}
			}
		}
		if !placed {
			t.Fatal("no space for filler")
		}
	}
	with, err := Analyze(l, Options{Constraints: cons(2)})
	if err != nil {
		t.Fatal(err)
	}
	if with.LeakageMW <= base.LeakageMW {
		t.Error("fillers should add leakage")
	}
	if with.InternalMW != base.InternalMW {
		t.Error("fillers should not add internal power")
	}
}

func TestNDRRaisesSwitching(t *testing.T) {
	l := chain(t, 60)
	routes, err := route.Route(l, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Analyze(l, Options{Constraints: cons(2), Routes: routes})
	if err != nil {
		t.Fatal(err)
	}
	wide := l.Clone()
	for i := range wide.NDR.Scale {
		wide.NDR.Scale[i] = 1.5
	}
	routesW, err := route.Route(wide, route.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Analyze(wide, Options{Constraints: cons(2), Routes: routesW})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.SwitchingMW <= base.SwitchingMW {
		t.Errorf("wider wires should raise switching power: %g vs %g",
			scaled.SwitchingMW, base.SwitchingMW)
	}
}

func TestActivityScaling(t *testing.T) {
	l := chain(t, 40)
	low, err := Analyze(l, Options{Constraints: cons(2), Activity: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Analyze(l, Options{Constraints: cons(2), Activity: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if high.SwitchingMW <= low.SwitchingMW || high.InternalMW <= low.InternalMW {
		t.Error("activity should scale dynamic power")
	}
}

func TestPowerErrors(t *testing.T) {
	l := chain(t, 5)
	if _, err := Analyze(l, Options{}); err == nil {
		t.Error("missing constraints accepted")
	}
}
