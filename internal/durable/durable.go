// Package durable is the crash-safe persistence layer behind guardd's
// resume-on-restart: an append-only JSON-lines write-ahead log per job,
// periodically compacted into a snapshot, both fsync'd and CRC-checked.
//
// Record format. Every WAL line is
//
//	crc32c(payload) in 8 hex digits, one space, payload, '\n'
//
// where payload is a compact JSON object {"t": <record type>, "d": <data>}.
// The CRC (Castagnoli) covers the payload bytes exactly, so any torn or
// bit-flipped record fails verification. Recovery is truncate-don't-poison:
// replay stops at the first record that is torn (no trailing newline),
// corrupt (CRC mismatch) or malformed, truncates the log back to the last
// valid record, and returns everything before it — a crash mid-append can
// only ever lose the record being appended, never an earlier one.
//
// Snapshots compact the log: Snapshot writes the full reconstructed state
// as a single CRC-checked record to a temporary file, fsyncs it, renames it
// over the snapshot file (atomic on POSIX), fsyncs the directory, and only
// then truncates the WAL. A crash anywhere in that sequence leaves either
// the old snapshot + full WAL or the new snapshot (+ possibly a stale WAL
// whose records are harmless to re-apply — appends are idempotent state
// records, newest wins). Replay returns the snapshot record first, then the
// WAL tail.
//
// Durability policy: every Append and Snapshot fsyncs before returning, so
// an acknowledged record survives SIGKILL and power loss (subject to the
// disk honoring flush). The write path is deliberately simple — jobs
// checkpoint at generation/epoch granularity, so WAL append rate is a few
// records per second at most and batching would buy nothing.
package durable

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"gdsiiguard/internal/fault"
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one replayed WAL or snapshot entry.
type Record struct {
	// Type discriminates the record ("spec", "state", "checkpoint", ...);
	// the store itself does not interpret it.
	Type string `json:"t"`
	// Data is the record payload, left raw for the caller to decode.
	Data json.RawMessage `json:"d,omitempty"`
}

// Store manages the per-job logs under one state directory. It is safe for
// concurrent use; per-job serialization is the Log's job.
type Store struct {
	dir string

	mu   sync.Mutex
	open map[string]*Log
}

// Open creates (if needed) and opens a state directory. The jobs
// subdirectory is created eagerly so a first List on a fresh directory
// works.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("durable: empty state directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("durable: create state dir: %w", err)
	}
	if err := syncDir(filepath.Join(dir, "jobs")); err != nil {
		return nil, err
	}
	return &Store{dir: dir, open: make(map[string]*Log)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// sanitizeID guards the filesystem mapping: job IDs become file names.
func sanitizeID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return fmt.Errorf("durable: invalid job id %q", id)
	}
	return nil
}

// Log opens (or creates) the job's write-ahead log. Repeated calls for the
// same ID return the same *Log.
func (s *Store) Log(id string) (*Log, error) {
	if err := sanitizeID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.open[id]; ok {
		return l, nil
	}
	base := filepath.Join(s.dir, "jobs", id)
	f, err := os.OpenFile(base+".wal", os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	l := &Log{id: id, walPath: base + ".wal", snapPath: base + ".snap", f: f}
	s.open[id] = l
	return l, nil
}

// List returns the IDs of every job with persisted state, sorted.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("durable: list jobs: %w", err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		for _, ext := range []string{".wal", ".snap"} {
			if strings.HasSuffix(name, ext) {
				seen[strings.TrimSuffix(name, ext)] = true
			}
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Remove deletes the job's log and snapshot (retention eviction). Removing
// a job that was never persisted is a no-op.
func (s *Store) Remove(id string) error {
	if err := sanitizeID(id); err != nil {
		return err
	}
	s.mu.Lock()
	if l, ok := s.open[id]; ok {
		delete(s.open, id)
		s.mu.Unlock()
		l.Close()
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	base := filepath.Join(s.dir, "jobs", id)
	for _, p := range []string{base + ".wal", base + ".snap"} {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("durable: remove %s: %w", p, err)
		}
	}
	return syncDir(filepath.Join(s.dir, "jobs"))
}

// Quarantine moves a job's unreadable state aside (".bad" suffixes) so a
// corrupt log can never wedge startup twice, while the bytes stay on disk
// for post-mortem.
func (s *Store) Quarantine(id string) error {
	if err := sanitizeID(id); err != nil {
		return err
	}
	s.mu.Lock()
	if l, ok := s.open[id]; ok {
		delete(s.open, id)
		s.mu.Unlock()
		l.Close()
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	base := filepath.Join(s.dir, "jobs", id)
	for _, p := range []string{base + ".wal", base + ".snap"} {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		if err := os.Rename(p, p+".bad"); err != nil {
			return fmt.Errorf("durable: quarantine %s: %w", p, err)
		}
	}
	return syncDir(filepath.Join(s.dir, "jobs"))
}

// Close closes every open log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, l := range s.open {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.open, id)
	}
	return first
}

// Log is one job's append-only WAL plus its compacted snapshot. All methods
// are safe for concurrent use.
type Log struct {
	id       string
	walPath  string
	snapPath string

	mu sync.Mutex
	f  *os.File
}

// ID returns the job ID the log belongs to.
func (l *Log) ID() string { return l.id }

// encode renders one CRC-framed record line.
func encode(typ string, v any) ([]byte, error) {
	var data json.RawMessage
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("durable: marshal %s record: %w", typ, err)
		}
		data = b
	}
	payload, err := json.Marshal(Record{Type: typ, Data: data})
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.Checksum(payload, castagnoli))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine verifies and parses one record line (without the trailing
// newline).
func decodeLine(line []byte) (Record, error) {
	var rec Record
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("durable: malformed record framing")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, fmt.Errorf("durable: malformed record CRC: %w", err)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return rec, fmt.Errorf("durable: record CRC mismatch (want %08x, got %08x)", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("durable: undecodable record: %w", err)
	}
	return rec, nil
}

// Append marshals v, frames it with a CRC, appends it to the WAL and
// fsyncs. The record is durable when Append returns.
func (l *Log) Append(typ string, v any) error {
	line, err := encode(typ, v)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("durable: log %s is closed", l.id)
	}
	// Crash point: a rule with Crash set SIGKILLs the process here, before
	// the record reaches the file — the kill-and-restart harness's
	// "crash at WAL append" scenario.
	if err := fault.Hit(fault.DurableAppend); err != nil {
		return err
	}
	if _, err := l.f.Write(line); err != nil {
		return fmt.Errorf("durable: append %s record: %w", typ, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync wal: %w", err)
	}
	return nil
}

// Snapshot atomically replaces the job's snapshot with a single compacted
// record and truncates the WAL. Crash-ordering: tmp write → tmp fsync →
// rename → dir fsync → WAL truncate → WAL fsync, so every intermediate
// crash leaves a recoverable combination (see the package comment).
func (l *Log) Snapshot(typ string, v any) error {
	line, err := encode(typ, v)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("durable: log %s is closed", l.id)
	}
	tmp := l.snapPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: create snapshot: %w", err)
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, l.snapPath); err != nil {
		return fmt.Errorf("durable: publish snapshot: %w", err)
	}
	if err := syncDir(filepath.Dir(l.snapPath)); err != nil {
		return err
	}
	// Crash point: the snapshot is durable but the WAL not yet truncated —
	// the harness's "crash post-snapshot" scenario. Replay must tolerate
	// the stale WAL tail (newest state record wins).
	if err := fault.Hit(fault.DurableSnapshot); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: truncate wal: %w", err)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return err
	}
	return l.f.Sync()
}

// Replay returns the compacted snapshot (nil if none) and the WAL records
// appended after it, oldest first. A torn or corrupt WAL tail is truncated
// back to the last valid record — recovery proceeds from what survived
// instead of failing startup. A corrupt snapshot is unrecoverable for this
// job and returns an error (callers quarantine).
func (l *Log) Replay() (snap *Record, tail []Record, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b, err := os.ReadFile(l.snapPath); err == nil {
		line := bytes.TrimSuffix(b, []byte("\n"))
		rec, err := decodeLine(line)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: snapshot for %s: %w", l.id, err)
		}
		snap = &rec
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	if l.f == nil {
		return nil, nil, fmt.Errorf("durable: log %s is closed", l.id)
	}
	if _, err := l.f.Seek(0, 0); err != nil {
		return nil, nil, err
	}
	valid := int64(0) // offset just past the last valid record
	sc := bufio.NewReader(l.f)
	for {
		line, err := sc.ReadBytes('\n')
		if err != nil {
			// EOF with a partial line is a torn final append; any other
			// read error also stops replay at the last valid offset.
			break
		}
		rec, err := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			// Corrupt record: everything after it is suspect too.
			break
		}
		tail = append(tail, rec)
		valid += int64(len(line))
	}
	if fi, err := l.f.Stat(); err == nil && fi.Size() > valid {
		if err := l.f.Truncate(valid); err != nil {
			return nil, nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
		if err := l.f.Sync(); err != nil {
			return nil, nil, err
		}
	}
	if _, err := l.f.Seek(0, 2); err != nil { // back to append position
		return nil, nil, err
	}
	return snap, tail, nil
}

// Close closes the WAL file handle. The log can be reopened via Store.Log
// only after a new Store is opened on the directory.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// syncDir fsyncs a directory so renames and unlinks inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}
