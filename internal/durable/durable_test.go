package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func openLog(t *testing.T, dir, id string) (*Store, *Log) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	l, err := s.Log(id)
	if err != nil {
		t.Fatalf("Log: %v", err)
	}
	return s, l
}

func replay(t *testing.T, l *Log) (*Record, []Record) {
	t.Helper()
	snap, tail, err := l.Replay()
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return snap, tail
}

func decode(t *testing.T, rec Record) payload {
	t.Helper()
	var p payload
	if err := json.Unmarshal(rec.Data, &p); err != nil {
		t.Fatalf("decode %s record: %v", rec.Type, err)
	}
	return p
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, l := openLog(t, dir, "job-1")
	for i := 0; i < 5; i++ {
		if err := l.Append("state", payload{N: i, S: "running"}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	l.Close()

	_, l2 := openLog(t, dir, "job-1")
	snap, tail := replay(t, l2)
	if snap != nil {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if len(tail) != 5 {
		t.Fatalf("replayed %d records, want 5", len(tail))
	}
	for i, rec := range tail {
		if rec.Type != "state" || decode(t, rec).N != i {
			t.Errorf("record %d = %s %s", i, rec.Type, rec.Data)
		}
	}
}

// A torn final append (no newline, partial bytes) must be truncated away,
// keeping every record before it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	_, l := openLog(t, dir, "job-1")
	for i := 0; i < 3; i++ {
		if err := l.Append("state", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	wal := filepath.Join(dir, "jobs", "job-1.wal")
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`0a1b2c3d {"t":"state","d":{"n":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, l2 := openLog(t, dir, "job-1")
	_, tail := replay(t, l2)
	if len(tail) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(tail))
	}
	// The truncation is physical: a further append then replay must not
	// resurrect the torn bytes.
	if err := l2.Append("state", payload{N: 3}); err != nil {
		t.Fatal(err)
	}
	_, tail = replay(t, l2)
	if len(tail) != 4 || decode(t, tail[3]).N != 3 {
		t.Fatalf("after truncate+append: %d records (last %s)", len(tail), tail[len(tail)-1].Data)
	}
}

// A bit-flip inside the final record fails its CRC and truncates it; a
// bit-flip in an earlier record drops it and everything after it (the tail
// is suspect once any record is corrupt), never poisoning recovery.
func TestBitFlipRecovery(t *testing.T) {
	dir := t.TempDir()
	_, l := openLog(t, dir, "job-1")
	for i := 0; i < 4; i++ {
		if err := l.Append("state", payload{N: i, S: strings.Repeat("x", 20)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	wal := filepath.Join(dir, "jobs", "job-1.wal")
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	// Flip one payload byte in the last record.
	last := []byte(lines[3])
	last[len(last)-5] ^= 0x40
	corrupted := strings.Join(lines[:3], "") + string(last)
	if err := os.WriteFile(wal, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	_, l2 := openLog(t, dir, "job-1")
	_, tail := replay(t, l2)
	if len(tail) != 3 {
		t.Fatalf("replayed %d records after tail bit-flip, want 3", len(tail))
	}
	l2.Close()

	// Now corrupt record 1 of the surviving 3: replay keeps only record 0.
	b, _ = os.ReadFile(wal)
	lines = strings.SplitAfter(string(b), "\n")
	mid := []byte(lines[1])
	mid[12] ^= 0x01
	if err := os.WriteFile(wal, []byte(lines[0]+string(mid)+lines[2]), 0o644); err != nil {
		t.Fatal(err)
	}
	_, l3 := openLog(t, dir, "job-1")
	_, tail = replay(t, l3)
	if len(tail) != 1 || decode(t, tail[0]).N != 0 {
		t.Fatalf("replayed %d records after mid-log bit-flip, want 1 (record 0)", len(tail))
	}
}

func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	_, l := openLog(t, dir, "job-1")
	for i := 0; i < 3; i++ {
		if err := l.Append("checkpoint", payload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot("snap", payload{N: 99}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := l.Append("checkpoint", payload{N: 100}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	if fi, err := os.Stat(filepath.Join(dir, "jobs", "job-1.wal")); err != nil || fi.Size() == 0 {
		t.Fatalf("wal after snapshot+append: %v (size %d)", err, fi.Size())
	}
	_, l2 := openLog(t, dir, "job-1")
	snap, tail := replay(t, l2)
	if snap == nil || snap.Type != "snap" || decode(t, *snap).N != 99 {
		t.Fatalf("snapshot = %+v, want snap/99", snap)
	}
	if len(tail) != 1 || decode(t, tail[0]).N != 100 {
		t.Fatalf("tail = %d records, want just the post-snapshot append", len(tail))
	}
}

// An abandoned snapshot temp file (crash between tmp write and rename)
// must not disturb replay.
func TestAbandonedSnapshotTmpIgnored(t *testing.T) {
	dir := t.TempDir()
	_, l := openLog(t, dir, "job-1")
	if err := l.Append("state", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "jobs", "job-1.snap.tmp")
	if err := os.WriteFile(tmp, []byte("partial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, tail := replay(t, l)
	if snap != nil || len(tail) != 1 {
		t.Fatalf("snap=%v tail=%d, want nil/1", snap, len(tail))
	}
}

func TestListAndRemove(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, id := range []string{"job-2", "job-1", "job-3"} {
		l, err := s.Log(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append("spec", payload{S: id}); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"job-1", "job-2", "job-3"}; len(ids) != 3 || ids[0] != want[0] || ids[2] != want[2] {
		t.Fatalf("List = %v, want %v", ids, want)
	}
	if err := s.Remove("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("job-2"); err != nil { // idempotent
		t.Fatalf("second Remove: %v", err)
	}
	ids, _ = s.List()
	if len(ids) != 2 {
		t.Fatalf("List after Remove = %v", ids)
	}
}

func TestQuarantineMovesAside(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	l, err := s.Log("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append("spec", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine("job-1"); err != nil {
		t.Fatal(err)
	}
	ids, _ := s.List()
	if len(ids) != 0 {
		t.Fatalf("List after quarantine = %v, want empty", ids)
	}
	if _, err := os.Stat(filepath.Join(dir, "jobs", "job-1.wal.bad")); err != nil {
		t.Fatalf("quarantined wal missing: %v", err)
	}
}

func TestInvalidJobIDRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, id := range []string{"", "a/b", `a\b`, ".."} {
		if _, err := s.Log(id); err == nil {
			t.Errorf("Log(%q) accepted", id)
		}
	}
}

// Reopening a store mid-stream (the restart path) must resume appends
// without clobbering prior records.
func TestReopenAppendsAfterExistingRecords(t *testing.T) {
	dir := t.TempDir()
	_, l := openLog(t, dir, "job-1")
	if err := l.Append("state", payload{N: 0}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, l2 := openLog(t, dir, "job-1")
	if err := l2.Append("state", payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	_, tail := replay(t, l2)
	if len(tail) != 2 || decode(t, tail[1]).N != 1 {
		t.Fatalf("tail after reopen+append = %d records", len(tail))
	}
}
