package place

import (
	"fmt"
	"math"
	"testing"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
)

// chainNetlist builds a design of nStages inverter chains, each capped with
// a DFF, plus a clock port — enough structure to exercise placement.
func chainNetlist(t testing.TB, chains, stages int) *netlist.Netlist {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New(fmt.Sprintf("chain_%dx%d", chains, stages), lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	if err := nl.ConnectPort(clkPort, clkNet); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < chains; c++ {
		inPort, _ := nl.AddPort(fmt.Sprintf("in%d", c), netlist.In)
		outPort, _ := nl.AddPort(fmt.Sprintf("out%d", c), netlist.Out)
		prev, _ := nl.AddNet(fmt.Sprintf("c%d_in", c))
		if err := nl.ConnectPort(inPort, prev); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < stages; s++ {
			inv, err := nl.AddInstance(fmt.Sprintf("c%d_inv%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			next, _ := nl.AddNet(fmt.Sprintf("c%d_n%d", c, s))
			if err := nl.Connect(inv, "A", prev); err != nil {
				t.Fatal(err)
			}
			if err := nl.Connect(inv, "ZN", next); err != nil {
				t.Fatal(err)
			}
			prev = next
		}
		dff, err := nl.AddInstance(fmt.Sprintf("c%d_dff", c), "DFF_X1")
		if err != nil {
			t.Fatal(err)
		}
		q, _ := nl.AddNet(fmt.Sprintf("c%d_q", c))
		if err := nl.Connect(dff, "D", prev); err != nil {
			t.Fatal(err)
		}
		if err := nl.Connect(dff, "CK", clkNet); err != nil {
			t.Fatal(err)
		}
		if err := nl.Connect(dff, "Q", q); err != nil {
			t.Fatal(err)
		}
		if err := nl.ConnectPort(outPort, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestGlobalPlacesEverything(t *testing.T) {
	nl := chainNetlist(t, 8, 20)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.6, RefinePasses: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Global: %v", err)
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	got := l.Utilization()
	if math.Abs(got-0.6) > 0.15 {
		t.Errorf("utilization = %g, want ≈0.6", got)
	}
	if len(l.PortPos) != len(nl.Ports) {
		t.Error("ports not spread")
	}
}

func TestGlobalUtilizationSweep(t *testing.T) {
	for _, util := range []float64{0.4, 0.55, 0.7, 0.85} {
		nl := chainNetlist(t, 4, 15)
		l, err := Global(nl, GlobalOptions{TargetUtil: util, Seed: 7})
		if err != nil {
			t.Fatalf("util %g: %v", util, err)
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("util %g: %v", util, err)
		}
		if math.Abs(l.Utilization()-util) > 0.2 {
			t.Errorf("util %g: got %g", util, l.Utilization())
		}
	}
}

func TestGlobalRejectsBadOptions(t *testing.T) {
	nl := chainNetlist(t, 1, 2)
	if _, err := Global(nl, GlobalOptions{TargetUtil: 0}); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := Global(nl, GlobalOptions{TargetUtil: 1.5}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	lib := opencell45.MustLoad()
	empty := netlist.New("empty", lib)
	if _, err := Global(empty, GlobalOptions{TargetUtil: 0.5}); err == nil {
		t.Error("empty netlist accepted")
	}
}

func TestGlobalDeterministic(t *testing.T) {
	nl1 := chainNetlist(t, 4, 10)
	nl2 := chainNetlist(t, 4, 10)
	l1, err := Global(nl1, GlobalOptions{TargetUtil: 0.6, RefinePasses: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Global(nl2, GlobalOptions{TargetUtil: 0.6, RefinePasses: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range nl1.Insts {
		p1 := l1.PlacementOf(in)
		p2 := l2.PlacementOf(nl2.Instance(in.Name))
		if p1 != p2 {
			t.Fatalf("placement of %s differs: %+v vs %+v", in.Name, p1, p2)
		}
	}
}

func TestRefineImprovesWirelength(t *testing.T) {
	nl := chainNetlist(t, 6, 25)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.5, RefinePasses: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before := l.TotalHPWL()
	moved := Refine(l, RefineOptions{Seed: 11})
	after := l.TotalHPWL()
	if after > before {
		t.Errorf("HPWL worsened: %d -> %d", before, after)
	}
	if moved > 0 && after == before {
		t.Error("cells moved but HPWL unchanged")
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid after refine: %v", err)
	}
}

func TestRefineRespectsFixedCells(t *testing.T) {
	nl := chainNetlist(t, 4, 10)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fixedPos := map[string]layout.Placement{}
	for _, in := range nl.Insts {
		if in.Master.Class.String() == "seq" {
			in.Fixed = true
			fixedPos[in.Name] = l.PlacementOf(in)
		}
	}
	Refine(l, RefineOptions{Seed: 1})
	for name, want := range fixedPos {
		if got := l.PlacementOf(nl.Instance(name)); got != want {
			t.Errorf("fixed cell %s moved: %+v -> %+v", name, want, got)
		}
	}
}

func TestECOEvacuatesBlockage(t *testing.T) {
	nl := chainNetlist(t, 6, 20)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Cap density at 25% over the left half of the core (feasible: the
	// right half ends at ~55%).
	cap := 0.25
	b := layout.Blockage{Row0: 0, Row1: l.NumRows, Site0: 0, Site1: l.SitesPerRow / 2, MaxDensity: cap}
	l.AddBlockage(b)
	before := l.RegionDensity(b.Row0, b.Row1, b.Site0, b.Site1)
	if before <= cap {
		t.Skip("region not overfull; test needs denser start")
	}
	res := ECO(l, 17)
	after := l.RegionDensity(b.Row0, b.Row1, b.Site0, b.Site1)
	if !res.Satisfied {
		t.Errorf("blockage not satisfied: density %g -> %g (moved %d)", before, after, res.Moved)
	}
	if after > cap+1e-9 {
		t.Errorf("density still %g > %g", after, cap)
	}
	if res.Moved == 0 {
		t.Error("no cells moved")
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid after ECO: %v", err)
	}
}

func TestECOKeepsFixedCellsInPlace(t *testing.T) {
	nl := chainNetlist(t, 4, 12)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var fixed *netlist.Instance
	for _, in := range nl.Insts {
		p := l.PlacementOf(in)
		if p.Placed && p.Site < l.SitesPerRow/2 {
			in.Fixed = true
			fixed = in
			break
		}
	}
	if fixed == nil {
		t.Skip("no cell in left half")
	}
	want := l.PlacementOf(fixed)
	l.AddBlockage(layout.Blockage{Row0: 0, Row1: l.NumRows, Site0: 0, Site1: l.SitesPerRow / 2, MaxDensity: 0.0})
	ECO(l, 3)
	if got := l.PlacementOf(fixed); got != want {
		t.Errorf("fixed cell moved: %+v -> %+v", want, got)
	}
}

func TestECONoBlockagesIsNoop(t *testing.T) {
	nl := chainNetlist(t, 2, 5)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := ECO(l, 1)
	if res.Moved != 0 || !res.Satisfied {
		t.Errorf("no-op ECO = %+v", res)
	}
}

func TestECOImpossibleCapReportsUnsatisfied(t *testing.T) {
	nl := chainNetlist(t, 6, 20)
	l, err := Global(nl, GlobalOptions{TargetUtil: 0.9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Zero density over the whole core: impossible.
	l.AddBlockage(layout.Blockage{Row0: 0, Row1: l.NumRows, Site0: 0, Site1: l.SitesPerRow, MaxDensity: 0})
	res := ECO(l, 5)
	if res.Satisfied {
		t.Error("impossible cap reported satisfied")
	}
	if err := l.Validate(); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
}

func BenchmarkGlobalPlacement(b *testing.B) {
	nl := chainNetlist(b, 16, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := nl.Clone()
		if _, err := Global(cl, GlobalOptions{TargetUtil: 0.6, RefinePasses: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
