// Package place provides the placement engines of the flow:
//
//   - Global: constructive initial placement (connectivity-clustered
//     snake fill to a target utilization) followed by wirelength-driven
//     refinement — the stand-in for a full global placer.
//   - Refine: incremental wirelength-driven improvement used standalone
//     and as the "ECO placement" step of the LDA operator; it honors
//     partial placement blockages and fixed cells.
//   - ECO: blockage-driven incremental placement that evacuates cells from
//     over-capacity blockage regions with minimal wirelength impact.
//
// All engines are deterministic for a given seed.
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// GlobalOptions configures initial placement.
type GlobalOptions struct {
	// TargetUtil is the desired core utilization in (0,1].
	TargetUtil float64
	// AspectRatio is core height/width in DBU (1.0 = square die).
	AspectRatio float64
	// RefinePasses is the number of wirelength refinement sweeps after
	// constructive placement.
	RefinePasses int
	// Seed drives all randomized tie-breaking.
	Seed int64
}

// Global builds a placed layout for the netlist at the target utilization.
func Global(nl *netlist.Netlist, opt GlobalOptions) (*layout.Layout, error) {
	if opt.TargetUtil <= 0 || opt.TargetUtil > 1 {
		return nil, fmt.Errorf("place: target utilization %g out of (0,1]", opt.TargetUtil)
	}
	if opt.AspectRatio <= 0 {
		opt.AspectRatio = 1.0
	}
	var cellSites int64
	for _, in := range nl.Insts {
		if in.Master.IsFunctional() {
			cellSites += int64(in.Master.WidthSites)
		}
	}
	if cellSites == 0 {
		return nil, fmt.Errorf("place: netlist %q has no functional cells", nl.Name)
	}
	totalSites := float64(cellSites) / opt.TargetUtil
	site := nl.Lib.Site
	// rows*H = aspect * sitesPerRow*W  and  rows*sitesPerRow = totalSites.
	rows := int(math.Sqrt(totalSites*opt.AspectRatio*float64(site.Width)/float64(site.Height))) + 1
	if rows < 1 {
		rows = 1
	}
	sitesPerRow := int(totalSites/float64(rows)) + 1
	// Ensure the widest cell fits.
	maxW := 0
	for _, in := range nl.Insts {
		if in.Master.WidthSites > maxW {
			maxW = in.Master.WidthSites
		}
	}
	if sitesPerRow < maxW {
		sitesPerRow = maxW
	}
	l, err := layout.New(nl, rows, sitesPerRow)
	if err != nil {
		return nil, err
	}
	l.SpreadPorts()

	rng := rand.New(rand.NewSource(opt.Seed))
	var toPlace []*netlist.Instance
	for _, in := range nl.Insts {
		if in.Master.IsFunctional() {
			toPlace = append(toPlace, in)
		}
	}
	if err := bisectPlace(l, toPlace, rng); err != nil {
		return nil, err
	}
	for p := 0; p < opt.RefinePasses; p++ {
		Refine(l, RefineOptions{MaxMoveRadius: 0, Seed: rng.Int63()})
	}
	return l, nil
}

// RefineOptions configures a wirelength refinement sweep.
type RefineOptions struct {
	// MaxMoveRadius bounds how far (in sites, Manhattan over row/site
	// deltas with rows weighted by the site aspect) a cell may move in one
	// step; 0 means unbounded.
	MaxMoveRadius int
	// Seed orders the sweep.
	Seed int64
}

// Refine performs one wirelength-driven ECO placement sweep: every movable
// cell is tried at the free slot nearest the median of its connected pins,
// and moved when total HPWL improves and no blockage cap is violated.
// It returns the number of cells moved.
func Refine(l *layout.Layout, opt RefineOptions) int {
	rng := rand.New(rand.NewSource(opt.Seed))
	cells := movableCells(l)
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
	dens := newDensityTracker(l)
	moved := 0
	for _, in := range cells {
		if tryImproveCell(l, dens, in, opt.MaxMoveRadius) {
			moved++
		}
	}
	return moved
}

func movableCells(l *layout.Layout) []*netlist.Instance {
	var out []*netlist.Instance
	for _, in := range l.Netlist.Insts {
		if in.Master.IsFunctional() && !in.Fixed && l.PlacementOf(in).Placed {
			out = append(out, in)
		}
	}
	return out
}

// tryImproveCell moves in toward the median of its nets if that lowers its
// connected HPWL; returns true when moved.
func tryImproveCell(l *layout.Layout, dens *densityTracker, in *netlist.Instance, maxRadius int) bool {
	tr, ts, ok := desiredSlot(l, in)
	if !ok {
		return false
	}
	p := l.PlacementOf(in)
	before := cellHPWL(l, in)
	row, site, ok := nearestFit(l, dens, in, tr, ts, maxRadius)
	if !ok || (row == p.Row && site == p.Site) {
		return false
	}
	old := p
	if err := l.Place(in, row, site); err != nil {
		return false
	}
	after := cellHPWL(l, in)
	if after >= before {
		_ = l.Place(in, old.Row, old.Site) // revert
		return false
	}
	dens.move(in, old.Row, old.Site, row, site)
	return true
}

// desiredSlot returns the median row/site of the cell's connected terminal
// positions.
func desiredSlot(l *layout.Layout, in *netlist.Instance) (row, site int, ok bool) {
	var xs, ys []int64
	for _, c := range in.Conns {
		if c.Net == nil || c.Net.IsClock {
			continue
		}
		for _, pt := range l.NetTermPoints(c.Net) {
			xs = append(xs, pt.X)
			ys = append(ys, pt.Y)
		}
	}
	if len(xs) == 0 {
		return 0, 0, false
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	mx, my := xs[len(xs)/2], ys[len(ys)/2]
	site = int((mx - l.Origin.X) / l.Lib().Site.Width)
	row = int((my - l.Origin.Y) / l.Lib().Site.Height)
	if row < 0 {
		row = 0
	}
	if row >= l.NumRows {
		row = l.NumRows - 1
	}
	if site < 0 {
		site = 0
	}
	if site >= l.SitesPerRow {
		site = l.SitesPerRow - 1
	}
	return row, site, true
}

// cellHPWL sums the HPWL of all signal nets touching the cell.
func cellHPWL(l *layout.Layout, in *netlist.Instance) int64 {
	var total int64
	for _, c := range in.Conns {
		if c.Net != nil && !c.Net.IsClock {
			total += l.NetHPWL(c.Net)
		}
	}
	return total
}

// nearestFit searches outward from (tr, ts) for the closest position where
// the cell fits and all blockage caps stay satisfied. The search expands in
// growing site-distance rings; rows are weighted by the site aspect ratio
// (one row step ≈ rowWeight site steps).
func nearestFit(l *layout.Layout, dens *densityTracker, in *netlist.Instance, tr, ts, maxRadius int) (int, int, bool) {
	rowWeight := int(l.Lib().Site.Height / l.Lib().Site.Width)
	if rowWeight < 1 {
		rowWeight = 1
	}
	limit := l.SitesPerRow + l.NumRows*rowWeight
	if maxRadius > 0 && maxRadius < limit {
		limit = maxRadius
	}
	for radius := 0; radius <= limit; radius += rowWeight {
		for dr := -radius / rowWeight; dr <= radius/rowWeight; dr++ {
			r := tr + dr
			if r < 0 || r >= l.NumRows {
				continue
			}
			span := radius - abs(dr)*rowWeight
			for _, s := range []int{ts - span, ts + span} {
				if s < 0 || s+in.Master.WidthSites > l.SitesPerRow {
					continue
				}
				if l.CanPlace(in, r, s) && dens.fits(in, r, s) {
					return r, s, true
				}
			}
		}
	}
	return 0, 0, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
