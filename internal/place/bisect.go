package place

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// bisectPlace performs recursive min-cut placement: the cell set is
// recursively split by connectivity-driven cluster growth, each half
// assigned to one half of the region, until leaf regions hold few cells,
// which are then filled row-wise with randomized gaps. This embeds the
// netlist's 2-D structure far better than any linear ordering can.
func bisectPlace(l *layout.Layout, cells []*netlist.Instance, rng *rand.Rand) error {
	region := siteRegion{0, l.NumRows, 0, l.SitesPerRow}
	return bisect(l, cells, region, rng)
}

// siteRegion is a rectangle in site coordinates [row0,row1) × [site0,site1).
type siteRegion struct {
	row0, row1, site0, site1 int
}

func (r siteRegion) rows() int  { return r.row1 - r.row0 }
func (r siteRegion) width() int { return r.site1 - r.site0 }
func (r siteRegion) sites() int { return r.rows() * r.width() }

func bisect(l *layout.Layout, cells []*netlist.Instance, region siteRegion, rng *rand.Rand) error {
	if len(cells) == 0 {
		return nil
	}
	var cellSites int
	for _, in := range cells {
		cellSites += in.Master.WidthSites
	}
	if cellSites > region.sites() {
		return fmt.Errorf("place: region %+v overfull: %d cells sites in %d", region, cellSites, region.sites())
	}
	// Leaf: place row-wise with random gaps.
	if len(cells) <= 24 || region.rows() <= 2 || region.width() <= 48 {
		return fillLeaf(l, cells, region, rng)
	}
	// Split the physically longer dimension (DBU aspect).
	siteW, siteH := l.Lib().Site.Width, l.Lib().Site.Height
	horizontalCut := int64(region.rows())*siteH > int64(region.width())*siteW
	var r1, r2 siteRegion
	if horizontalCut {
		mid := region.row0 + region.rows()/2
		r1 = siteRegion{region.row0, mid, region.site0, region.site1}
		r2 = siteRegion{mid, region.row1, region.site0, region.site1}
	} else {
		mid := region.site0 + region.width()/2
		r1 = siteRegion{region.row0, region.row1, region.site0, mid}
		r2 = siteRegion{region.row0, region.row1, mid, region.site1}
	}
	// Target: split cell width proportionally to sub-region capacity,
	// capped so both halves keep slack.
	target := cellSites * r1.sites() / region.sites()
	if max := r1.sites() - 1; target > max {
		target = max
	}
	g1, g2 := partitionByConnectivity(cells, target, r2.sites()-1)
	if err := bisect(l, g1, r1, rng); err != nil {
		return err
	}
	return bisect(l, g2, r2, rng)
}

// partitionByConnectivity grows cluster A from a seed, always absorbing the
// unassigned cell with the most connections into A (lazy max-gain buckets),
// until A's width reaches target. Cells left over go to B; if B would
// overflow its capacity, trailing cells move back to A.
func partitionByConnectivity(cells []*netlist.Instance, target, capB int) (a, b []*netlist.Instance) {
	inSet := make(map[*netlist.Instance]int, len(cells)) // index into cells
	for i, in := range cells {
		inSet[in] = i
	}
	assigned := make([]bool, len(cells))
	gain := make([]int, len(cells))
	// Lazy max-heap of (gain, index): stale entries (whose recorded gain no
	// longer matches) are discarded on pop.
	h := &gainHeap{}
	pushCand := func(idx int) {
		heapPush(h, gainEntry{gain[idx], idx})
	}
	pop := func() (int, bool) {
		for h.Len() > 0 {
			e := heapPop(h)
			if assigned[e.idx] || gain[e.idx] != e.g {
				continue
			}
			return e.idx, true
		}
		return 0, false
	}

	widthA := 0
	absorb := func(idx int) {
		assigned[idx] = true
		a = append(a, cells[idx])
		widthA += cells[idx].Master.WidthSites
		// raise neighbor gains
		for _, c := range cells[idx].Conns {
			n := c.Net
			if n == nil || n.IsClock || n.NumTerms() > 24 {
				continue
			}
			touch := func(in *netlist.Instance) {
				if in == nil {
					return
				}
				if j, ok := inSet[in]; ok && !assigned[j] {
					gain[j]++
					pushCand(j)
				}
			}
			if n.HasDriver() && !n.Driver.IsPort() {
				touch(n.Driver.Inst)
			}
			for _, s := range n.Sinks {
				if !s.IsPort() {
					touch(s.Inst)
				}
			}
		}
	}

	next := 0 // deterministic fallback seed cursor
	for widthA < target {
		idx, ok := pop()
		if !ok || gain[idx] == 0 {
			// no connected candidate: seed a fresh cluster
			for next < len(cells) && assigned[next] {
				next++
			}
			if next >= len(cells) {
				break
			}
			idx = next
		}
		if assigned[idx] {
			continue
		}
		if widthA+cells[idx].Master.WidthSites > target+4 {
			// would overshoot noticeably; try to finish with small cells
			assigned[idx] = true
			b = append(b, cells[idx])
			continue
		}
		absorb(idx)
	}
	widthB := 0
	for i, in := range cells {
		if !assigned[i] {
			b = append(b, in)
			widthB += in.Master.WidthSites
		}
	}
	// Rebalance if B overflows its capacity.
	for widthB > capB && len(b) > 0 {
		in := b[len(b)-1]
		b = b[:len(b)-1]
		a = append(a, in)
		widthB -= in.Master.WidthSites
	}
	return a, b
}

// fillLeaf places the leaf's cells row-wise inside the region, spreading
// the leftover space as randomized gaps.
func fillLeaf(l *layout.Layout, cells []*netlist.Instance, region siteRegion, rng *rand.Rand) error {
	// Sort by width descending for dense packing, then by ID for
	// determinism.
	sorted := append([]*netlist.Instance(nil), cells...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Master.WidthSites != sorted[j].Master.WidthSites {
			return sorted[i].Master.WidthSites > sorted[j].Master.WidthSites
		}
		return sorted[i].ID < sorted[j].ID
	})
	// Distribute cells to rows (first-fit decreasing).
	type rowState struct {
		cells []*netlist.Instance
		used  int
	}
	rows := make([]rowState, region.rows())
	capPerRow := region.width()
	for _, in := range sorted {
		// Balanced assignment: the least-used row takes the next cell, so
		// leaf rows end at similar densities (real placers row-balance).
		best := -1
		for r := range rows {
			if rows[r].used+in.Master.WidthSites > capPerRow {
				continue
			}
			if best < 0 || rows[r].used < rows[best].used {
				best = r
			}
		}
		if best < 0 {
			return fmt.Errorf("place: leaf %+v cannot fit cell %s", region, in.Name)
		}
		rows[best].cells = append(rows[best].cells, in)
		rows[best].used += in.Master.WidthSites
	}
	for r := range rows {
		free := capPerRow - rows[r].used
		gaps := len(rows[r].cells) + 1
		weights := make([]float64, gaps)
		var wSum float64
		for i := range weights {
			weights[i] = rng.ExpFloat64()
			wSum += weights[i]
		}
		site := region.site0
		remFree := free
		for i, in := range rows[r].cells {
			gap := 0
			if wSum > 0 {
				gap = int(weights[i] / wSum * float64(free))
			}
			if gap > remFree {
				gap = remFree
			}
			site += gap
			remFree -= gap
			if err := l.Place(in, region.row0+r, site); err != nil {
				return err
			}
			site += in.Master.WidthSites
		}
	}
	return nil
}

// gainEntry is a lazy max-heap element for cluster growth.
type gainEntry struct{ g, idx int }

// gainHeap orders entries by descending gain, breaking ties by ascending
// index for determinism.
type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].g != h[j].g {
		return h[i].g > h[j].g
	}
	return h[i].idx < h[j].idx
}
func (h gainHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)   { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

func heapPush(h *gainHeap, e gainEntry) { heap.Push(h, e) }
func heapPop(h *gainHeap) gainEntry     { return heap.Pop(h).(gainEntry) }
