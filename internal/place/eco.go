package place

import (
	"math/rand"
	"sort"

	"gdsiiguard/internal/fault"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// densityTracker maintains, for every placement blockage, the number of
// occupied sites inside its region, so blockage-cap checks during cell moves
// are O(#blockages) instead of O(region area).
type densityTracker struct {
	l    *layout.Layout
	used []int // occupied sites per blockage
	caps []int // allowed sites per blockage
}

func newDensityTracker(l *layout.Layout) *densityTracker {
	d := &densityTracker{l: l}
	for _, b := range l.Blockages {
		area := (b.Row1 - b.Row0) * (b.Site1 - b.Site0)
		used := 0
		for r := b.Row0; r < b.Row1; r++ {
			for s := b.Site0; s < b.Site1; s++ {
				if l.At(r, s) != nil {
					used++
				}
			}
		}
		d.used = append(d.used, used)
		d.caps = append(d.caps, int(float64(area)*b.MaxDensity))
	}
	return d
}

// overlap returns how many sites of the cell at (row, site) fall inside
// blockage i.
func (d *densityTracker) overlap(in *netlist.Instance, row, site, i int) int {
	b := d.l.Blockages[i]
	if row < b.Row0 || row >= b.Row1 {
		return 0
	}
	lo, hi := site, site+in.Master.WidthSites
	if lo < b.Site0 {
		lo = b.Site0
	}
	if hi > b.Site1 {
		hi = b.Site1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// fits reports whether placing the cell at (row, site) keeps every blockage
// at or under its cap, accounting for the sites the cell would vacate.
func (d *densityTracker) fits(in *netlist.Instance, row, site int) bool {
	if len(d.used) == 0 {
		return true
	}
	p := d.l.PlacementOf(in)
	for i := range d.used {
		add := d.overlap(in, row, site, i)
		if add == 0 {
			continue
		}
		cur := 0
		if p.Placed {
			cur = d.overlap(in, p.Row, p.Site, i)
		}
		if d.used[i]-cur+add > d.caps[i] {
			return false
		}
	}
	return true
}

// move updates the tracker after a cell relocation.
func (d *densityTracker) move(in *netlist.Instance, oldRow, oldSite, newRow, newSite int) {
	for i := range d.used {
		d.used[i] += d.overlap(in, newRow, newSite, i) - d.overlap(in, oldRow, oldSite, i)
	}
}

// overfull returns indices of blockages currently above their caps.
func (d *densityTracker) overfull() []int {
	var out []int
	for i := range d.used {
		if d.used[i] > d.caps[i] {
			out = append(out, i)
		}
	}
	return out
}

// ECOResult reports the outcome of a blockage-driven ECO placement run.
type ECOResult struct {
	// Moved is the number of cells relocated.
	Moved int
	// Satisfied reports whether every blockage ended at or below its cap.
	Satisfied bool
}

// ECO incrementally legalizes the layout against its placement blockages:
// cells are evacuated from over-capacity blockage regions to the nearby
// free positions that increase wirelength least. Fixed cells never move.
// This is the "Run ECO placement" step of the LDA operator (Algorithm 2).
func ECO(l *layout.Layout, seed int64) ECOResult {
	// ECO has no error return, so an armed fault here surfaces as a panic
	// and is contained by the flow's operator-stage recovery.
	if err := fault.Hit(fault.PlaceECO); err != nil {
		panic(err)
	}
	dens := newDensityTracker(l)
	rng := rand.New(rand.NewSource(seed))
	res := ECOResult{}
	const maxCandidates = 24

	for _, bi := range dens.overfull() {
		b := l.Blockages[bi]
		for dens.used[bi] > dens.caps[bi] {
			cells := movableCellsInRegion(l, b)
			if len(cells) == 0 {
				break
			}
			rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
			if len(cells) > maxCandidates {
				cells = cells[:maxCandidates]
			}
			// Pick the evacuation with the smallest HPWL penalty.
			type cand struct {
				in        *netlist.Instance
				row, site int
				delta     int64
			}
			best := cand{delta: 1 << 62}
			found := false
			for _, in := range cells {
				p := l.PlacementOf(in)
				before := cellHPWL(l, in)
				// Evacuation is wirelength-driven: bounded search radius so
				// cells never teleport across the die.
				row, site, ok := nearestFit(l, dens, in, p.Row, p.Site, 120)
				if !ok || (row == p.Row && site == p.Site) {
					continue
				}
				if err := l.Place(in, row, site); err != nil {
					continue
				}
				delta := cellHPWL(l, in) - before
				_ = l.Place(in, p.Row, p.Site) // revert probe
				if delta < best.delta {
					best = cand{in: in, row: row, site: site, delta: delta}
					found = true
				}
			}
			if !found {
				break
			}
			p := l.PlacementOf(best.in)
			if err := l.Place(best.in, best.row, best.site); err != nil {
				break
			}
			dens.move(best.in, p.Row, p.Site, best.row, best.site)
			res.Moved++
		}
	}
	res.Satisfied = len(dens.overfull()) == 0
	return res
}

// movableCellsInRegion returns the non-fixed functional cells whose
// placement origin falls in the blockage region, widest first (evacuating
// wide cells frees density fastest).
func movableCellsInRegion(l *layout.Layout, b layout.Blockage) []*netlist.Instance {
	seen := map[*netlist.Instance]bool{}
	var out []*netlist.Instance
	for r := b.Row0; r < b.Row1; r++ {
		for s := b.Site0; s < b.Site1; s++ {
			in := l.At(r, s)
			if in == nil || seen[in] || in.Fixed || !in.Master.IsFunctional() {
				continue
			}
			seen[in] = true
			out = append(out, in)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Master.WidthSites != out[j].Master.WidthSites {
			return out[i].Master.WidthSites > out[j].Master.WidthSites
		}
		return out[i].ID < out[j].ID
	})
	return out
}
