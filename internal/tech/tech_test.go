package tech

import (
	"strings"
	"testing"
)

func sampleCell() *Cell {
	return &Cell{
		Name:       "NAND2_X1",
		Class:      Comb,
		WidthSites: 3,
		Pins: []Pin{
			{Name: "A1", Dir: Input, Cap: 1.6},
			{Name: "A2", Dir: Input, Cap: 1.6},
			{Name: "ZN", Dir: Output, MaxCap: 60},
		},
		Arcs: []TimingArc{
			{From: "A1", To: "ZN", Intrinsic: 12, DriveRes: 4.0},
			{From: "A2", To: "ZN", Intrinsic: 13, DriveRes: 4.0},
		},
		Leakage:        10,
		InternalEnergy: 1.1,
	}
}

func sampleDFF() *Cell {
	return &Cell{
		Name:       "DFF_X1",
		Class:      Seq,
		WidthSites: 6,
		Pins: []Pin{
			{Name: "D", Dir: Input, Cap: 1.8},
			{Name: "CK", Dir: Input, Cap: 1.2, IsClock: true},
			{Name: "Q", Dir: Output, MaxCap: 60},
		},
		ClkToQ: 95,
		Setup:  40,
	}
}

func sampleLibrary() *Library {
	l := NewLibrary("test45")
	l.DBUPerMicron = 1000
	l.Vdd = 1.1
	l.Site = Site{Name: "core", Width: 190, Height: 1400}
	for i := 1; i <= 4; i++ {
		dir := Horizontal
		if i%2 == 0 {
			dir = Vertical
		}
		l.Layers = append(l.Layers, Layer{
			Name: "metal" + string(rune('0'+i)), Index: i, Dir: dir,
			Pitch: 190, Width: 70, Spacing: 65, RPerUM: 0.00038, CPerUM: 0.16,
		})
	}
	l.AddCell(sampleCell())
	l.AddCell(sampleDFF())
	l.AddCell(&Cell{Name: "FILLCELL_X2", Class: Filler, WidthSites: 2})
	l.AddCell(&Cell{Name: "FILLCELL_X8", Class: Filler, WidthSites: 8})
	return l
}

func TestCellPinLookup(t *testing.T) {
	c := sampleCell()
	if p := c.Pin("A1"); p == nil || p.Dir != Input {
		t.Fatalf("Pin(A1) = %v", p)
	}
	if p := c.Pin("ZN"); p == nil || p.Dir != Output {
		t.Fatalf("Pin(ZN) = %v", p)
	}
	if c.Pin("nope") != nil {
		t.Error("missing pin should return nil")
	}
}

func TestCellOutputAndInputs(t *testing.T) {
	c := sampleCell()
	if out := c.OutputPin(); out == nil || out.Name != "ZN" {
		t.Fatalf("OutputPin = %v", out)
	}
	ins := c.InputPins()
	if len(ins) != 2 {
		t.Fatalf("InputPins = %d, want 2", len(ins))
	}
	d := sampleDFF()
	if ck := d.ClockPin(); ck == nil || ck.Name != "CK" {
		t.Fatalf("ClockPin = %v", ck)
	}
	// Clock pin excluded from InputPins.
	if ins := d.InputPins(); len(ins) != 1 || ins[0].Name != "D" {
		t.Fatalf("DFF InputPins = %v", ins)
	}
}

func TestCellArc(t *testing.T) {
	c := sampleCell()
	a := c.Arc("A2", "ZN")
	if a == nil || a.Intrinsic != 13 {
		t.Fatalf("Arc(A2,ZN) = %v", a)
	}
	if c.Arc("ZN", "A1") != nil {
		t.Error("reversed arc should not exist")
	}
}

func TestCellClassPredicates(t *testing.T) {
	if !sampleCell().IsFunctional() || !sampleDFF().IsFunctional() {
		t.Error("comb/seq cells are functional")
	}
	f := &Cell{Name: "FILL", Class: Filler, WidthSites: 1}
	if f.IsFunctional() {
		t.Error("filler is not functional")
	}
	for c, want := range map[CellClass]string{Comb: "comb", Seq: "seq", Filler: "filler", Tap: "tap"} {
		if c.String() != want {
			t.Errorf("CellClass(%d).String = %q", int(c), c.String())
		}
	}
}

func TestLibraryCellRegistry(t *testing.T) {
	l := sampleLibrary()
	if l.NumCells() != 4 {
		t.Fatalf("NumCells = %d, want 4", l.NumCells())
	}
	if l.Cell("DFF_X1") == nil {
		t.Fatal("DFF_X1 missing")
	}
	if l.Cell("bogus") != nil {
		t.Error("unknown cell should be nil")
	}
	// Deterministic sorted iteration.
	cells := l.Cells()
	for i := 1; i < len(cells); i++ {
		if cells[i-1].Name >= cells[i].Name {
			t.Fatalf("Cells() not sorted: %q before %q", cells[i-1].Name, cells[i].Name)
		}
	}
	// Replacement keeps count stable.
	repl := sampleCell()
	repl.Leakage = 99
	l.AddCell(repl)
	if l.NumCells() != 4 {
		t.Errorf("replace changed count to %d", l.NumCells())
	}
	if l.Cell("NAND2_X1").Leakage != 99 {
		t.Error("replacement not visible")
	}
}

func TestLibraryLayers(t *testing.T) {
	l := sampleLibrary()
	if l.NumLayers() != 4 {
		t.Fatalf("NumLayers = %d", l.NumLayers())
	}
	if ly := l.Layer(1); ly == nil || ly.Dir != Horizontal {
		t.Fatalf("Layer(1) = %v", ly)
	}
	if ly := l.Layer(2); ly == nil || ly.Dir != Vertical {
		t.Fatalf("Layer(2) = %v", ly)
	}
	if l.Layer(0) != nil || l.Layer(5) != nil {
		t.Error("out-of-range layers should be nil")
	}
	if ly := l.LayerByName("metal3"); ly == nil || ly.Index != 3 {
		t.Fatalf("LayerByName = %v", ly)
	}
	if l.LayerByName("poly") != nil {
		t.Error("unknown layer should be nil")
	}
}

func TestUnitConversion(t *testing.T) {
	l := sampleLibrary()
	if got := l.MicronsToDBU(0.19); got != 190 {
		t.Errorf("MicronsToDBU(0.19) = %d", got)
	}
	if got := l.DBUToMicrons(1400); got != 1.4 {
		t.Errorf("DBUToMicrons(1400) = %g", got)
	}
}

func TestFillersByWidth(t *testing.T) {
	l := sampleLibrary()
	fills := l.FillersByWidth()
	if len(fills) != 2 {
		t.Fatalf("fillers = %d, want 2", len(fills))
	}
	if fills[0].WidthSites != 8 || fills[1].WidthSites != 2 {
		t.Errorf("fillers not sorted by decreasing width: %v,%v",
			fills[0].WidthSites, fills[1].WidthSites)
	}
}

func TestNDR(t *testing.T) {
	n := DefaultNDR(10)
	if len(n.Scale) != 10 {
		t.Fatalf("scale len = %d", len(n.Scale))
	}
	for i := 1; i <= 10; i++ {
		if n.LayerScale(i) != 1.0 {
			t.Fatalf("default scale[%d] = %g", i, n.LayerScale(i))
		}
	}
	n.Scale[4] = 1.5
	if n.LayerScale(5) != 1.5 {
		t.Error("LayerScale(5) should be 1.5")
	}
	if n.LayerScale(0) != 1.0 || n.LayerScale(11) != 1.0 {
		t.Error("out-of-range scale should be 1.0")
	}
	c := n.Clone()
	c.Scale[4] = 1.2
	if n.LayerScale(5) != 1.5 {
		t.Error("Clone should not alias")
	}
}

func TestValidateOK(t *testing.T) {
	if err := sampleLibrary().Validate(); err != nil {
		t.Fatalf("valid library rejected: %v", err)
	}
}

func TestValidateRejectsBadData(t *testing.T) {
	l := sampleLibrary()
	l.DBUPerMicron = 0
	if err := l.Validate(); err == nil {
		t.Error("zero DBU not rejected")
	}

	l = sampleLibrary()
	l.Site.Width = 0
	if err := l.Validate(); err == nil {
		t.Error("zero-width site not rejected")
	}

	l = sampleLibrary()
	l.Layers[2].Index = 7
	if err := l.Validate(); err == nil {
		t.Error("misindexed layer not rejected")
	}

	l = sampleLibrary()
	l.Layers[0].Width = l.Layers[0].Pitch + 1
	if err := l.Validate(); err == nil {
		t.Error("width>pitch not rejected")
	}

	l = sampleLibrary()
	bad := sampleCell()
	bad.Name = "BADARC"
	bad.Arcs = append(bad.Arcs, TimingArc{From: "NOPE", To: "ZN"})
	l.AddCell(bad)
	if err := l.Validate(); err == nil || !strings.Contains(err.Error(), "missing pin") {
		t.Errorf("bad arc not rejected: %v", err)
	}

	l = sampleLibrary()
	noClk := sampleDFF()
	noClk.Name = "DFF_NOCLK"
	noClk.Pins[1].IsClock = false
	l.AddCell(noClk)
	if err := l.Validate(); err == nil {
		t.Error("clockless seq cell not rejected")
	}

	l = sampleLibrary()
	l.AddCell(&Cell{Name: "ZEROW", Class: Comb, WidthSites: 0})
	if err := l.Validate(); err == nil {
		t.Error("zero-width cell not rejected")
	}
}

func TestPinDirString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" || Inout.String() != "inout" {
		t.Error("PinDir strings wrong")
	}
}

func TestLayerDirString(t *testing.T) {
	if Horizontal.String() != "HORIZONTAL" || Vertical.String() != "VERTICAL" {
		t.Error("LayerDir strings wrong")
	}
}
