// Package tech models the process technology and standard-cell library that
// a physical layout is implemented in: the placement site, the routing layer
// stack, the standard cells with their timing and power parameters, and
// non-default routing rules (NDRs).
//
// The model mirrors the subset of LEF/Liberty data that an ECO anti-Trojan
// flow needs. It is deliberately unit-consistent:
//
//   - distance:    database units (DBU); DBUPerMicron sets the scale
//   - time:        picoseconds (ps)
//   - capacitance: femtofarads (fF)
//   - resistance:  kiloohms (kΩ), so kΩ × fF = ps
//   - power:       leakage in nW, internal energy in fJ per toggle
//
// The embedded 45nm library lives in package opencell45, which parses real
// LEF/Liberty text through packages lef and liberty into this model.
package tech

import (
	"fmt"
	"sort"
)

// CellClass categorizes a standard cell for the purposes of placement,
// security analysis, and fill.
type CellClass int

const (
	// Comb is an ordinary combinational gate.
	Comb CellClass = iota
	// Seq is a sequential element (flip-flop or latch).
	Seq
	// Filler is a non-functional filler cell: it occupies sites but has no
	// logic. Filler-occupied sites count as exploitable (Definition 2.2).
	Filler
	// Tap is a well-tap or end-cap cell; non-functional but required.
	Tap
)

// String implements fmt.Stringer.
func (c CellClass) String() string {
	switch c {
	case Comb:
		return "comb"
	case Seq:
		return "seq"
	case Filler:
		return "filler"
	case Tap:
		return "tap"
	default:
		return fmt.Sprintf("CellClass(%d)", int(c))
	}
}

// PinDir is the signal direction of a cell pin.
type PinDir int

const (
	// Input pin.
	Input PinDir = iota
	// Output pin.
	Output
	// Inout pin (rare; treated as both for connectivity).
	Inout
)

// String implements fmt.Stringer.
func (d PinDir) String() string {
	switch d {
	case Input:
		return "input"
	case Output:
		return "output"
	case Inout:
		return "inout"
	default:
		return fmt.Sprintf("PinDir(%d)", int(d))
	}
}

// Pin describes one pin of a standard cell.
type Pin struct {
	Name string
	Dir  PinDir
	// Cap is the input capacitance in fF (0 for outputs).
	Cap float64
	// MaxCap is the largest load an output pin may drive, in fF
	// (0 for inputs).
	MaxCap float64
	// IsClock marks the clock pin of sequential cells.
	IsClock bool
}

// TimingArc is a delay arc from an input pin to an output pin, using a
// linear delay model: delay(ps) = Intrinsic + DriveRes × Cload(fF).
type TimingArc struct {
	From, To string
	// Intrinsic is the zero-load delay in ps.
	Intrinsic float64
	// DriveRes is the effective drive resistance in kΩ.
	DriveRes float64
}

// Cell describes one standard-cell master.
type Cell struct {
	Name  string
	Class CellClass
	// WidthSites is the cell width in placement sites; all cells are one
	// row high.
	WidthSites int
	Pins       []Pin
	Arcs       []TimingArc
	// Leakage is the static leakage power in nW.
	Leakage float64
	// InternalEnergy is the internal switching energy per output toggle
	// in fJ.
	InternalEnergy float64
	// ClkToQ is the clock-to-output delay in ps (sequential cells only).
	ClkToQ float64
	// Setup is the setup time in ps (sequential cells only).
	Setup float64

	pinIndex map[string]int
}

// Pin returns the named pin, or nil if the cell has no such pin.
func (c *Cell) Pin(name string) *Pin {
	if c.pinIndex == nil {
		c.buildPinIndex()
	}
	i, ok := c.pinIndex[name]
	if !ok {
		return nil
	}
	return &c.Pins[i]
}

func (c *Cell) buildPinIndex() {
	c.pinIndex = make(map[string]int, len(c.Pins))
	for i := range c.Pins {
		c.pinIndex[c.Pins[i].Name] = i
	}
}

// OutputPin returns the first output pin of the cell, or nil for cells with
// no outputs (fillers, taps).
func (c *Cell) OutputPin() *Pin {
	for i := range c.Pins {
		if c.Pins[i].Dir == Output {
			return &c.Pins[i]
		}
	}
	return nil
}

// InputPins returns all input pins of the cell, excluding the clock pin.
func (c *Cell) InputPins() []Pin {
	var out []Pin
	for _, p := range c.Pins {
		if p.Dir == Input && !p.IsClock {
			out = append(out, p)
		}
	}
	return out
}

// ClockPin returns the clock pin of a sequential cell, or nil.
func (c *Cell) ClockPin() *Pin {
	for i := range c.Pins {
		if c.Pins[i].IsClock {
			return &c.Pins[i]
		}
	}
	return nil
}

// Arc returns the timing arc from input pin `from` to output pin `to`,
// or nil if no such arc exists.
func (c *Cell) Arc(from, to string) *TimingArc {
	for i := range c.Arcs {
		if c.Arcs[i].From == from && c.Arcs[i].To == to {
			return &c.Arcs[i]
		}
	}
	return nil
}

// IsFunctional reports whether the cell carries logic (combinational or
// sequential, as opposed to filler/tap).
func (c *Cell) IsFunctional() bool {
	return c.Class == Comb || c.Class == Seq
}

// LayerDir is the preferred routing direction of a metal layer.
type LayerDir int

const (
	// Horizontal preferred routing direction.
	Horizontal LayerDir = iota
	// Vertical preferred routing direction.
	Vertical
)

// String implements fmt.Stringer.
func (d LayerDir) String() string {
	if d == Horizontal {
		return "HORIZONTAL"
	}
	return "VERTICAL"
}

// Layer describes one routing metal layer.
type Layer struct {
	Name  string
	Index int // 1-based metal index
	Dir   LayerDir
	// Pitch is the routing track pitch in DBU.
	Pitch int64
	// Width is the default wire width in DBU.
	Width int64
	// Spacing is the minimum same-layer spacing in DBU.
	Spacing int64
	// RPerUM is wire resistance in kΩ per µm at default width.
	RPerUM float64
	// CPerUM is wire capacitance in fF per µm at default width.
	CPerUM float64
}

// Site describes the placement site of the core rows.
type Site struct {
	Name   string
	Width  int64 // DBU
	Height int64 // DBU
}

// NDR is a non-default routing rule: per-layer wire width scale factors,
// as manipulated by the Routing Width Scaling operator. A scale of 1.0 on
// every layer is the default rule.
type NDR struct {
	// Scale[i] is the width multiplier for metal layer index i+1.
	Scale []float64
}

// DefaultNDR returns an NDR with scale 1.0 on all k layers.
func DefaultNDR(k int) NDR {
	s := make([]float64, k)
	for i := range s {
		s[i] = 1.0
	}
	return NDR{Scale: s}
}

// LayerScale returns the width scale for 1-based metal index i (1.0 when out
// of range).
func (n NDR) LayerScale(i int) float64 {
	if i < 1 || i > len(n.Scale) {
		return 1.0
	}
	return n.Scale[i-1]
}

// Clone returns a deep copy of the NDR.
func (n NDR) Clone() NDR {
	s := make([]float64, len(n.Scale))
	copy(s, n.Scale)
	return NDR{Scale: s}
}

// Library is a complete technology + standard-cell library.
type Library struct {
	Name string
	// DBUPerMicron sets the database-unit scale (LEF DATABASE MICRONS).
	DBUPerMicron int64
	Site         Site
	Layers       []Layer // ordered by metal index
	// Vdd is the supply voltage in volts (for switching power).
	Vdd float64

	cells map[string]*Cell
	names []string // sorted cell names, for deterministic iteration
}

// NewLibrary returns an empty library with the given name.
func NewLibrary(name string) *Library {
	return &Library{
		Name:  name,
		cells: make(map[string]*Cell),
	}
}

// AddCell registers a cell master. Re-adding a name replaces the previous
// definition (Liberty data merges onto LEF skeletons this way).
func (l *Library) AddCell(c *Cell) {
	if _, exists := l.cells[c.Name]; !exists {
		l.names = append(l.names, c.Name)
		sort.Strings(l.names)
	}
	l.cells[c.Name] = c
}

// Cell returns the named cell master, or nil.
func (l *Library) Cell(name string) *Cell {
	return l.cells[name]
}

// Cells returns all cell masters in deterministic (name) order.
func (l *Library) Cells() []*Cell {
	out := make([]*Cell, 0, len(l.names))
	for _, n := range l.names {
		out = append(out, l.cells[n])
	}
	return out
}

// NumCells returns the number of registered cell masters.
func (l *Library) NumCells() int { return len(l.cells) }

// NumLayers returns K, the number of routing metal layers.
func (l *Library) NumLayers() int { return len(l.Layers) }

// Layer returns the layer with 1-based metal index i, or nil.
func (l *Library) Layer(i int) *Layer {
	if i < 1 || i > len(l.Layers) {
		return nil
	}
	return &l.Layers[i-1]
}

// LayerByName returns the named layer, or nil.
func (l *Library) LayerByName(name string) *Layer {
	for i := range l.Layers {
		if l.Layers[i].Name == name {
			return &l.Layers[i]
		}
	}
	return nil
}

// MicronsToDBU converts microns to database units.
func (l *Library) MicronsToDBU(um float64) int64 {
	return int64(um*float64(l.DBUPerMicron) + 0.5)
}

// DBUToMicrons converts database units to microns.
func (l *Library) DBUToMicrons(dbu int64) float64 {
	return float64(dbu) / float64(l.DBUPerMicron)
}

// FillersByWidth returns the filler cells sorted by decreasing width in
// sites; used by fill-based defenses (BISA, Ba et al.).
func (l *Library) FillersByWidth() []*Cell {
	var out []*Cell
	for _, c := range l.Cells() {
		if c.Class == Filler {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WidthSites > out[j].WidthSites })
	return out
}

// Validate checks internal consistency of the library: positive geometry,
// monotonically indexed layers, cells with sane widths and arcs referencing
// existing pins. It returns the first problem found.
func (l *Library) Validate() error {
	if l.DBUPerMicron <= 0 {
		return fmt.Errorf("tech: library %q: DBUPerMicron must be positive", l.Name)
	}
	if l.Site.Width <= 0 || l.Site.Height <= 0 {
		return fmt.Errorf("tech: library %q: site %q has non-positive geometry", l.Name, l.Site.Name)
	}
	for i := range l.Layers {
		ly := &l.Layers[i]
		if ly.Index != i+1 {
			return fmt.Errorf("tech: layer %q has index %d, want %d", ly.Name, ly.Index, i+1)
		}
		if ly.Pitch <= 0 || ly.Width <= 0 {
			return fmt.Errorf("tech: layer %q has non-positive pitch/width", ly.Name)
		}
		if ly.Width > ly.Pitch {
			return fmt.Errorf("tech: layer %q wider than its pitch", ly.Name)
		}
	}
	for _, c := range l.Cells() {
		if c.WidthSites <= 0 {
			return fmt.Errorf("tech: cell %q has non-positive width", c.Name)
		}
		for _, a := range c.Arcs {
			if c.Pin(a.From) == nil || c.Pin(a.To) == nil {
				return fmt.Errorf("tech: cell %q arc %s->%s references missing pin", c.Name, a.From, a.To)
			}
		}
		if c.Class == Seq && c.ClockPin() == nil {
			return fmt.Errorf("tech: sequential cell %q has no clock pin", c.Name)
		}
	}
	return nil
}
