package baselines

import (
	"fmt"
	"time"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/geom"
	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/security"
)

// Name identifies a baseline defense.
type Name string

// The three compared defenses.
const (
	ICAS Name = "ICAS"
	BISA Name = "BISA"
	Ba   Name = "Ba"
)

// ICASOptions configures the ICAS re-implementation.
type ICASOptions struct {
	// Utilizations is the sweep of target core densities the undirected
	// tuner tries (default 0.70–0.85).
	Utilizations []float64
	// Seed drives placement randomization.
	Seed int64
}

// RunICAS applies the ICAS-style defense: security-agnostic global
// re-placement at swept higher densities. The candidate with the fewest
// remaining free sites that still routes without catastrophic overflow is
// kept — the tuner never looks at the asset list.
func RunICAS(base *core.Baseline, opt ICASOptions) (*core.Result, error) {
	if len(opt.Utilizations) == 0 {
		opt.Utilizations = []float64{0.70, 0.75, 0.80, 0.85}
	}
	start := time.Now()
	var best, fallback *core.Result
	for _, util := range opt.Utilizations {
		nl := base.Layout.Netlist.Clone()
		l, err := place.Global(nl, place.GlobalOptions{
			TargetUtil:   util,
			RefinePasses: 2,
			Seed:         opt.Seed,
		})
		if err != nil {
			continue // density infeasible for this netlist
		}
		res := &core.Result{}
		if err := core.Evaluate(l, base, res); err != nil {
			return nil, fmt.Errorf("baselines: ICAS: %w", err)
		}
		// Undirected criterion: fewest free sites among candidates that
		// stay roughly routable; congested designs fall back to the
		// least-violating candidate (the real flow ships what it has).
		if fallback == nil || res.Metrics.DRC < fallback.Metrics.DRC {
			fallback = res
		}
		if res.Metrics.DRC > 200 {
			continue
		}
		if best == nil || res.Layout.FreeSites() < best.Layout.FreeSites() {
			best = res
		}
	}
	if best == nil {
		best = fallback
	}
	if best == nil {
		return nil, fmt.Errorf("baselines: ICAS could not place the design at any density")
	}
	best.Metrics.Runtime = time.Since(start)
	return best, nil
}

// RunBISA applies BISA: every free region of the layout is filled with
// functional tamper-evident logic, pushing local density toward 100%
// everywhere regardless of asset proximity.
func RunBISA(base *core.Baseline) (*core.Result, error) {
	start := time.Now()
	l := base.Layout.Clone()
	l.Netlist.Name = base.Layout.Netlist.Name
	core.Preprocess(l)
	if _, err := fillRunsWithLogic(l, allFreeRuns(l), "bisa", 8); err != nil {
		return nil, fmt.Errorf("baselines: BISA: %w", err)
	}
	res := &core.Result{}
	if err := core.Evaluate(l, base, res); err != nil {
		return nil, fmt.Errorf("baselines: BISA: %w", err)
	}
	res.Metrics.Runtime = time.Since(start)
	return res, nil
}

// BaOptions configures the Ba et al. re-implementation.
type BaOptions struct {
	// RadiusUM is the fill radius around security-critical cells in
	// microns (default 25µm).
	RadiusUM float64
}

// RunBa applies Ba et al.: BISA-style functional filling restricted to the
// neighborhood of the security-critical cells (the prioritized empty
// spaces), leaving remote free regions open — cheaper than BISA, with
// discounted coverage.
func RunBa(base *core.Baseline, opt BaOptions) (*core.Result, error) {
	if opt.RadiusUM <= 0 {
		opt.RadiusUM = 25
	}
	start := time.Now()
	l := base.Layout.Clone()
	core.Preprocess(l)
	radius := l.Lib().MicronsToDBU(opt.RadiusUM)

	// Free runs within the radius of any asset.
	var assets []geom.Rect
	for _, in := range l.Netlist.CriticalInsts() {
		if r := l.CellRect(in); !r.Empty() {
			assets = append(assets, r)
		}
	}
	var near []layout.SiteRun
	for _, run := range allFreeRuns(l) {
		lo := l.SiteDBU(run.Row, run.Start)
		center := geom.Pt(lo.X+int64(run.Len)*l.Lib().Site.Width/2, lo.Y+l.Lib().Site.Height/2)
		for _, a := range assets {
			if a.DistTo(center) <= radius {
				near = append(near, run)
				break
			}
		}
	}
	if _, err := fillRunsWithLogic(l, near, "ba", 8); err != nil {
		return nil, fmt.Errorf("baselines: Ba: %w", err)
	}
	res := &core.Result{}
	if err := core.Evaluate(l, base, res); err != nil {
		return nil, fmt.Errorf("baselines: Ba: %w", err)
	}
	res.Metrics.Runtime = time.Since(start)
	return res, nil
}

// assessOnly re-exposes the security assessment helper for tests.
func assessOnly(l *layout.Layout, p security.Params) (*security.Assessment, error) {
	return security.Assess(l, nil, nil, p)
}
