// Package baselines implements the three state-of-the-art design-time
// defenses the paper compares against:
//
//   - ICAS (Trippel et al., S&P'20): undirected CAD-parameter tuning — the
//     design is globally re-placed at higher core density to squeeze free
//     space, with no awareness of where the security assets are.
//   - BISA (Xiao et al., HOST'13): every free region is filled with
//     functional, tamper-evident logic (chains of gates pipelined through
//     flip-flops, observable at a test port), leaving almost no insertion
//     space but paying heavy power/timing/DRC costs.
//   - Ba et al. (ECCTD'15/ISVLSI'16): BISA's filling applied only locally,
//     near the security-critical cells, trading defensive coverage for
//     lower overheads.
//
// All three produce a core.Result evaluated by the exact same pipeline as
// the GDSII-Guard flow, so the comparison in the experiments is apples to
// apples.
package baselines

import (
	"fmt"

	"gdsiiguard/internal/layout"
	"gdsiiguard/internal/netlist"
)

// fillStats reports one functional-fill pass.
type fillStats struct {
	Cells      int // functional cells inserted
	SitesUsed  int
	ChainPorts int
}

// fillRunsWithLogic fills the given free runs with functional
// tamper-evident logic: chains of inverters broken by a flip-flop every
// chainLen gates (so no combinational path grows unboundedly), fed from a
// dedicated test-in port and observed at per-chain test-out ports. Gaps too
// narrow for any functional cell are left open (they are sub-threshold for
// Trojan insertion anyway).
func fillRunsWithLogic(l *layout.Layout, runs []layout.SiteRun, prefix string, chainLen int) (fillStats, error) {
	nl := l.Netlist
	lib := l.Lib()
	inv := lib.Cell("INV_X1")
	dff := lib.Cell("DFF_X1")
	if inv == nil || dff == nil {
		return fillStats{}, fmt.Errorf("baselines: library lacks INV_X1/DFF_X1")
	}
	clkNet := findClockNet(nl)

	// Test infrastructure ports (idempotent per prefix).
	inPortName := prefix + "_test_si"
	var inNet *netlist.Net
	if nl.Port(inPortName) == nil {
		p, err := nl.AddPort(inPortName, netlist.In)
		if err != nil {
			return fillStats{}, err
		}
		n, err := nl.AddNet(inPortName)
		if err != nil {
			return fillStats{}, err
		}
		if err := nl.ConnectPort(p, n); err != nil {
			return fillStats{}, err
		}
		inNet = n
	} else {
		inNet = nl.Net(inPortName)
	}

	var st fillStats
	gate := 0
	chain := 0
	prev := inNet
	depth := 0

	endChain := func() error {
		if prev == inNet {
			return nil
		}
		name := fmt.Sprintf("%s_so%d", prefix, chain)
		p, err := nl.AddPort(name, netlist.Out)
		if err != nil {
			return err
		}
		if err := nl.ConnectPort(p, prev); err != nil {
			return err
		}
		if pos, ok := l.PortPos[inPortName]; ok {
			l.PortPos[name] = pos
		} else {
			l.SpreadPorts()
		}
		st.ChainPorts++
		chain++
		prev = inNet
		depth = 0
		return nil
	}

	for _, run := range runs {
		site := run.Start
		remaining := run.Len
		for remaining > 0 {
			var master = inv
			useDFF := clkNet != nil && depth >= chainLen && remaining >= dff.WidthSites
			if useDFF {
				master = dff
			}
			if remaining < master.WidthSites {
				// Try the inverter as a fallback before giving up on the
				// tail of this run.
				if master == dff && remaining >= inv.WidthSites {
					master = inv
				} else {
					break
				}
			}
			if !l.Free(run.Row, site) {
				site++
				remaining--
				continue
			}
			name := fmt.Sprintf("%s_f%d", prefix, gate)
			in, err := nl.AddInstance(name, master.Name)
			if err != nil {
				return st, err
			}
			// Runs are disjoint and consumed left-to-right, so the slot is
			// free by construction.
			if err := l.Place(in, run.Row, site); err != nil {
				return st, fmt.Errorf("baselines: fill placement: %w", err)
			}
			next, err := nl.AddNet(name + "_z")
			if err != nil {
				return st, err
			}
			if master == dff {
				if err := nl.Connect(in, "D", prev); err != nil {
					return st, err
				}
				if err := nl.Connect(in, "CK", clkNet); err != nil {
					return st, err
				}
				if err := nl.Connect(in, "Q", next); err != nil {
					return st, err
				}
				depth = 0
			} else {
				if err := nl.Connect(in, "A", prev); err != nil {
					return st, err
				}
				if err := nl.Connect(in, "ZN", next); err != nil {
					return st, err
				}
				depth++
			}
			prev = next
			st.Cells++
			st.SitesUsed += master.WidthSites
			site += master.WidthSites
			remaining -= master.WidthSites
			gate++
			// Cap combinational depth even without DFFs available.
			if clkNet == nil && depth >= chainLen {
				if err := endChain(); err != nil {
					return st, err
				}
			}
		}
	}
	if err := endChain(); err != nil {
		return st, err
	}
	// A trailing chain that ended exactly on a DFF still needs observing.
	if prev != inNet {
		if err := endChain(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// findClockNet returns the first clock net, or nil.
func findClockNet(nl *netlist.Netlist) *netlist.Net {
	for _, n := range nl.Nets {
		if n.IsClock {
			return n
		}
	}
	return nil
}

// allFreeRuns returns every maximal free run of the layout.
func allFreeRuns(l *layout.Layout) []layout.SiteRun {
	var out []layout.SiteRun
	for r := 0; r < l.NumRows; r++ {
		out = append(out, l.FreeRuns(r)...)
	}
	return out
}
