package baselines

import (
	"fmt"
	"strings"
	"testing"

	"gdsiiguard/internal/core"
	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
	"gdsiiguard/internal/place"
	"gdsiiguard/internal/sdc"
	"gdsiiguard/internal/security"
)

func buildBase(t testing.TB, chains, stages int, util, periodNS float64) *core.Baseline {
	t.Helper()
	lib := opencell45.MustLoad()
	nl := netlist.New("bl", lib)
	clkPort, _ := nl.AddPort("clk", netlist.In)
	clkNet, _ := nl.AddNet("clk")
	clkNet.IsClock = true
	_ = nl.ConnectPort(clkPort, clkNet)
	for c := 0; c < chains; c++ {
		in, _ := nl.AddPort(fmt.Sprintf("i%d", c), netlist.In)
		prev, _ := nl.AddNet(fmt.Sprintf("pi%d", c))
		_ = nl.ConnectPort(in, prev)
		for s := 0; s < stages; s++ {
			g, err := nl.AddInstance(fmt.Sprintf("c%dg%d", c, s), "INV_X1")
			if err != nil {
				t.Fatal(err)
			}
			nx, _ := nl.AddNet(fmt.Sprintf("c%dn%d", c, s))
			_ = nl.Connect(g, "A", prev)
			_ = nl.Connect(g, "ZN", nx)
			prev = nx
		}
		ff, _ := nl.AddInstance(fmt.Sprintf("key%d", c), "DFF_X1")
		ff.SecurityCritical = true
		q, _ := nl.AddNet(fmt.Sprintf("q%d", c))
		_ = nl.Connect(ff, "D", prev)
		_ = nl.Connect(ff, "CK", clkNet)
		_ = nl.Connect(ff, "Q", q)
		out, _ := nl.AddPort(fmt.Sprintf("o%d", c), netlist.Out)
		_ = nl.ConnectPort(out, q)
	}
	l, err := place.Global(nl, place.GlobalOptions{TargetUtil: util, RefinePasses: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cons, _ := sdc.ParseString(fmt.Sprintf("create_clock -name clk -period %g [get_ports clk]\n", periodNS))
	base, err := core.EvalBaseline(l, core.FlowConfig{Constraints: cons, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return base
}

func TestBISAFillsAlmostEverything(t *testing.T) {
	base := buildBase(t, 5, 20, 0.5, 5)
	res, err := RunBISA(base)
	if err != nil {
		t.Fatalf("RunBISA: %v", err)
	}
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("BISA layout invalid: %v", err)
	}
	if err := res.Layout.Netlist.Validate(); err != nil {
		t.Fatalf("BISA netlist invalid: %v", err)
	}
	// Fill raises utilization dramatically.
	if res.Layout.Utilization() < 0.9 {
		t.Errorf("BISA utilization = %g, want ≥ 0.9", res.Layout.Utilization())
	}
	// Security improves massively vs baseline.
	if res.Metrics.Security > 0.3 {
		t.Errorf("BISA security = %g, want < 0.3", res.Metrics.Security)
	}
	// Power overhead is the defense's signature cost.
	if res.Metrics.PowerMW <= base.Metrics.PowerMW {
		t.Error("BISA should raise power")
	}
}

func TestBISAFillIsTamperEvident(t *testing.T) {
	base := buildBase(t, 4, 15, 0.5, 5)
	res, err := RunBISA(base)
	if err != nil {
		t.Fatal(err)
	}
	// Fill cells are functional (observable through test ports), so they
	// do NOT count as exploitable sites.
	nFill := 0
	for _, in := range res.Layout.Netlist.Insts {
		if strings.HasPrefix(in.Name, "bisa_f") {
			nFill++
			if !in.Master.IsFunctional() {
				t.Fatalf("fill cell %s is non-functional", in.Name)
			}
		}
	}
	if nFill == 0 {
		t.Fatal("no fill cells inserted")
	}
	// Test scan-out ports exist.
	found := false
	for _, p := range res.Layout.Netlist.Ports {
		if strings.HasPrefix(p.Name, "bisa_so") {
			found = true
		}
	}
	if !found {
		t.Error("no BISA scan-out port")
	}
}

func TestBaFillsOnlyNearAssets(t *testing.T) {
	base := buildBase(t, 8, 40, 0.5, 5)
	bisa, err := RunBISA(base)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := RunBa(base, BaOptions{RadiusUM: 5})
	if err != nil {
		t.Fatalf("RunBa: %v", err)
	}
	if err := ba.Layout.Validate(); err != nil {
		t.Fatalf("Ba layout invalid: %v", err)
	}
	// Ba inserts fewer cells than BISA (local only).
	countFill := func(res *core.Result, prefix string) int {
		n := 0
		for _, in := range res.Layout.Netlist.Insts {
			if strings.HasPrefix(in.Name, prefix) {
				n++
			}
		}
		return n
	}
	nBISA, nBa := countFill(bisa, "bisa_f"), countFill(ba, "ba_f")
	if nBa >= nBISA {
		t.Errorf("Ba inserted %d cells, BISA %d; Ba should be local", nBa, nBISA)
	}
	if nBa == 0 {
		t.Error("Ba inserted nothing")
	}
	// Ba's coverage is discounted: it never beats BISA, and leaves more
	// raw free space on the layout (remote regions stay open).
	if ba.Metrics.Security < bisa.Metrics.Security {
		t.Errorf("Ba security %g better than BISA %g", ba.Metrics.Security, bisa.Metrics.Security)
	}
	if ba.Metrics.Security > 1.0 {
		t.Errorf("Ba security %g worse than baseline", ba.Metrics.Security)
	}
	if ba.Layout.FreeSites() <= bisa.Layout.FreeSites() {
		t.Errorf("Ba free sites %d ≤ BISA %d; local fill should leave more space",
			ba.Layout.FreeSites(), bisa.Layout.FreeSites())
	}
	// And costs less power than BISA.
	if ba.Metrics.PowerMW >= bisa.Metrics.PowerMW {
		t.Errorf("Ba power %g ≥ BISA power %g", ba.Metrics.PowerMW, bisa.Metrics.PowerMW)
	}
}

func TestICASSqueezesFreeSpace(t *testing.T) {
	base := buildBase(t, 5, 20, 0.5, 5)
	res, err := RunICAS(base, ICASOptions{Seed: 1})
	if err != nil {
		t.Fatalf("RunICAS: %v", err)
	}
	if err := res.Layout.Validate(); err != nil {
		t.Fatalf("ICAS layout invalid: %v", err)
	}
	if res.Layout.Utilization() <= base.Layout.Utilization() {
		t.Errorf("ICAS utilization %g not above baseline %g",
			res.Layout.Utilization(), base.Layout.Utilization())
	}
	if res.Metrics.Security >= 1.0 {
		t.Errorf("ICAS security = %g, want < 1", res.Metrics.Security)
	}
	// The netlist is untouched (no cells added).
	if got, want := len(res.Layout.Netlist.Insts), len(base.Layout.Netlist.Insts); got != want {
		t.Errorf("ICAS changed instance count: %d vs %d", got, want)
	}
}

func TestICASWeakerThanBISA(t *testing.T) {
	base := buildBase(t, 8, 40, 0.5, 5)
	icas, err := RunICAS(base, ICASOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bisa, err := RunBISA(base)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: ICAS leaves the most free space of the defenses.
	if icas.Metrics.Security <= bisa.Metrics.Security {
		t.Errorf("ICAS security %g stronger than BISA %g (paper shape inverted)",
			icas.Metrics.Security, bisa.Metrics.Security)
	}
}

func TestBaselinesDontMutateBase(t *testing.T) {
	base := buildBase(t, 4, 12, 0.5, 5)
	nInsts := len(base.Layout.Netlist.Insts)
	util := base.Layout.Utilization()
	if _, err := RunBISA(base); err != nil {
		t.Fatal(err)
	}
	if _, err := RunBa(base, BaOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunICAS(base, ICASOptions{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if len(base.Layout.Netlist.Insts) != nInsts {
		t.Error("baseline netlist mutated")
	}
	if base.Layout.Utilization() != util {
		t.Error("baseline layout mutated")
	}
	for _, in := range base.Layout.Netlist.CriticalInsts() {
		if in.Fixed {
			t.Error("baseline assets locked by defense run")
			break
		}
	}
}

func TestFillHandlesFragmentedSpace(t *testing.T) {
	base := buildBase(t, 3, 10, 0.7, 5)
	res, err := RunBISA(base)
	if err != nil {
		t.Fatal(err)
	}
	// Fill cells interleave with DFF pipeline stages; assess still works.
	a, err := assessOnly(res.Layout, security.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.ERSites > res.Layout.TotalSites()/10 {
		t.Errorf("BISA left %d ER sites of %d total", a.ERSites, res.Layout.TotalSites())
	}
}
