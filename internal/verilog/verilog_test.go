package verilog

import (
	"strings"
	"testing"

	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/opencell45"
)

const toySrc = `
// toy design
module toy ( in0, in1, clk, out0 );
  input in0, in1, clk ;
  output out0 ;
  wire n1, n2 ;

  INV_X1 u1 ( .A(in0), .ZN(n1) );
  NAND2_X1 u2 ( .A1(n1), .A2(in1), .ZN(n2) );
  DFF_X1 u3 ( .D(n2), .CK(clk), .Q(out0) );
endmodule
`

func TestParseBasics(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, err := ParseString(toySrc, lib)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if nl.Name != "toy" {
		t.Errorf("Name = %q", nl.Name)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := nl.Stats()
	if s.Insts != 3 || s.Ports != 4 {
		t.Errorf("Stats = %+v", s)
	}
	if p := nl.Port("in0"); p == nil || p.Dir != netlist.In {
		t.Errorf("in0 = %v", p)
	}
	if p := nl.Port("out0"); p == nil || p.Dir != netlist.Out {
		t.Errorf("out0 = %v", p)
	}
}

func TestClockDetection(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, err := ParseString(toySrc, lib)
	if err != nil {
		t.Fatal(err)
	}
	if !nl.Net("clk").IsClock {
		t.Error("clk net not marked as clock")
	}
	if nl.Net("n1").IsClock {
		t.Error("n1 wrongly marked as clock")
	}
}

func TestConnectivity(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, _ := ParseString(toySrc, lib)
	n1 := nl.Net("n1")
	if n1.Driver.Inst == nil || n1.Driver.Inst.Name != "u1" {
		t.Errorf("n1 driver = %v", n1.Driver)
	}
	// port-driven net
	if d := nl.Net("in0").Driver; !d.IsPort() {
		t.Errorf("in0 driver = %v", d)
	}
	// port sink
	out := nl.Net("out0")
	foundPort := false
	for _, s := range out.Sinks {
		if s.IsPort() {
			foundPort = true
		}
	}
	if !foundPort {
		t.Error("out0 has no port sink")
	}
}

func TestRoundTrip(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, err := ParseString(toySrc, lib)
	if err != nil {
		t.Fatal(err)
	}
	text := WriteString(nl)
	nl2, err := ParseString(text, lib)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if err := nl2.Validate(); err != nil {
		t.Fatalf("round-trip invalid: %v", err)
	}
	s1, s2 := nl.Stats(), nl2.Stats()
	if s1 != s2 {
		t.Errorf("stats changed: %+v vs %+v", s1, s2)
	}
	for _, in := range nl.Insts {
		in2 := nl2.Instance(in.Name)
		if in2 == nil || in2.Master.Name != in.Master.Name {
			t.Errorf("instance %s mismatch", in.Name)
			continue
		}
		for _, c := range in.Conns {
			if n2 := in2.NetConn(c.Pin); n2 == nil || n2.Name != c.Net.Name {
				t.Errorf("%s/%s connects %v, want %s", in.Name, c.Pin, n2, c.Net.Name)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	lib := opencell45.MustLoad()
	cases := []struct{ name, src string }{
		{"not a module", "wire x ;"},
		{"missing semicolon after ports", "module m ( a ) input a ; endmodule"},
		{"unknown master", "module m ( a );\ninput a ;\nFOO_X9 u1 ( .A(a) );\nendmodule"},
		{"undeclared net", "module m ( a );\ninput a ;\nINV_X1 u1 ( .A(a), .ZN(ghost) );\nendmodule"},
		{"unknown pin", "module m ( a );\ninput a ;\nwire z ;\nINV_X1 u1 ( .BOGUS(a), .ZN(z) );\nendmodule"},
		{"positional conn", "module m ( a );\ninput a ;\nwire z ;\nINV_X1 u1 ( a, z );\nendmodule"},
		{"missing endmodule", "module m ( a );\ninput a ;"},
		{"double driver", "module m ( a );\ninput a ;\nwire z ;\nINV_X1 u1 ( .A(a), .ZN(z) );\nINV_X1 u2 ( .A(a), .ZN(z) );\nendmodule"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src, lib); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestComments(t *testing.T) {
	lib := opencell45.MustLoad()
	src := `
/* block
   comment */
module m ( a, y ); // ports
  input a ;
  output y ;
  INV_X1 u1 ( .A(a), .ZN(y) ); // inverter
endmodule
`
	nl, err := ParseString(src, lib)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if nl.Stats().Insts != 1 {
		t.Error("instance lost")
	}
}

func TestWireRedeclarationOfPort(t *testing.T) {
	lib := opencell45.MustLoad()
	src := `
module m ( a, y );
  input a ;
  output y ;
  wire a, y ;
  INV_X1 u1 ( .A(a), .ZN(y) );
endmodule
`
	if _, err := ParseString(src, lib); err != nil {
		t.Fatalf("port wire redeclaration should be legal: %v", err)
	}
}

func TestWriteWrapsWireDecls(t *testing.T) {
	lib := opencell45.MustLoad()
	nl := netlist.New("wide", lib)
	for i := 0; i < 25; i++ {
		name := "n" + strings.Repeat("x", 1) + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := nl.AddNet(name + string(rune('0'+i%10))); err != nil {
			t.Fatal(err)
		}
	}
	text := WriteString(nl)
	if strings.Count(text, "wire ") < 3 {
		t.Errorf("expected wrapped wire declarations, got:\n%s", text)
	}
}

func TestFillerInstancesRoundTrip(t *testing.T) {
	lib := opencell45.MustLoad()
	nl, err := ParseString(toySrc, lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddInstance("fill0", "FILLCELL_X4"); err != nil {
		t.Fatal(err)
	}
	text := WriteString(nl)
	nl2, err := ParseString(text, lib)
	if err != nil {
		t.Fatalf("re-parse with filler: %v\n%s", err, text)
	}
	if nl2.Instance("fill0") == nil {
		t.Error("filler lost in round trip")
	}
}
