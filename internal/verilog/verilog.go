// Package verilog reads and writes flat gate-level structural Verilog:
// one module, input/output/wire declarations, and named-port standard-cell
// instantiations. This is the netlist hand-off format between synthesis and
// P&R that the GDSII-Guard flow consumes and emits.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"gdsiiguard/internal/netlist"
	"gdsiiguard/internal/tech"
)

// Parse reads a structural Verilog module and builds a netlist over lib.
// Every port implicitly declares a net of the same name. Nets with a sink
// on a clock pin are marked as clock nets.
func Parse(r io.Reader, lib *tech.Library) (*netlist.Netlist, error) {
	p := &parser{sc: newScanner(r), lib: lib}
	return p.parseModule()
}

// ParseString is a convenience wrapper over Parse.
func ParseString(s string, lib *tech.Library) (*netlist.Netlist, error) {
	return Parse(strings.NewReader(s), lib)
}

type parser struct {
	sc  *scanner
	lib *tech.Library
}

func (p *parser) parseModule() (*netlist.Netlist, error) {
	if err := p.expectWord("module"); err != nil {
		return nil, err
	}
	name, err := p.word()
	if err != nil {
		return nil, err
	}
	nl := netlist.New(name, p.lib)

	// Port list: ( a, b, c ) ;  — directions come from declarations.
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var portNames []string
	for {
		tok, ok := p.sc.next()
		if !ok {
			return nil, p.errf("unterminated port list")
		}
		if tok == ")" {
			break
		}
		if tok != "," {
			portNames = append(portNames, tok)
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	declared := make(map[string]bool)

	for {
		tok, ok := p.sc.next()
		if !ok {
			return nil, p.errf("missing endmodule")
		}
		switch tok {
		case "endmodule":
			if err := p.finish(nl); err != nil {
				return nil, err
			}
			return nl, nil
		case "input", "output":
			dir := netlist.In
			if tok == "output" {
				dir = netlist.Out
			}
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				port, err := nl.AddPort(n, dir)
				if err != nil {
					return nil, p.wrap(err)
				}
				net, err := nl.AddNet(n)
				if err != nil {
					return nil, p.wrap(err)
				}
				if err := nl.ConnectPort(port, net); err != nil {
					return nil, p.wrap(err)
				}
				declared[n] = true
			}
		case "wire":
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				if declared[n] {
					continue // wire re-declaration of a port net is legal
				}
				if _, err := nl.AddNet(n); err != nil {
					return nil, p.wrap(err)
				}
				declared[n] = true
			}
		default:
			// cell instantiation: MASTER instname ( .PIN(net), ... ) ;
			if err := p.parseInstance(nl, tok); err != nil {
				return nil, err
			}
		}
	}
}

// finish validates port coverage and marks clock nets.
func (p *parser) finish(nl *netlist.Netlist) error {
	for _, n := range nl.Nets {
		for _, s := range n.Sinks {
			if s.IsPort() {
				continue
			}
			if pin := s.Inst.Master.Pin(s.Pin); pin != nil && pin.IsClock {
				n.IsClock = true
				break
			}
		}
	}
	return nil
}

func (p *parser) parseInstance(nl *netlist.Netlist, master string) error {
	instName, err := p.word()
	if err != nil {
		return err
	}
	in, err := nl.AddInstance(instName, master)
	if err != nil {
		return p.wrap(err)
	}
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		tok, ok := p.sc.next()
		if !ok {
			return p.errf("unterminated instance %s", instName)
		}
		if tok == ")" {
			break
		}
		if tok == "," {
			continue
		}
		if !strings.HasPrefix(tok, ".") {
			return p.errf("expected .PIN in instance %s, got %q", instName, tok)
		}
		pin := tok[1:]
		if err := p.expect("("); err != nil {
			return err
		}
		netName, err := p.word()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		net := nl.Net(netName)
		if net == nil {
			return p.errf("instance %s pin %s: undeclared net %q", instName, pin, netName)
		}
		if err := nl.Connect(in, pin, net); err != nil {
			return p.wrap(err)
		}
	}
	return p.expect(";")
}

// nameList parses "a, b, c ;".
func (p *parser) nameList() ([]string, error) {
	var names []string
	for {
		tok, ok := p.sc.next()
		if !ok {
			return nil, p.errf("unterminated declaration")
		}
		if tok == ";" {
			return names, nil
		}
		if tok != "," {
			names = append(names, tok)
		}
	}
}

func (p *parser) word() (string, error) {
	tok, ok := p.sc.next()
	if !ok {
		return "", p.errf("unexpected EOF")
	}
	return tok, nil
}

func (p *parser) expect(want string) error {
	tok, ok := p.sc.next()
	if !ok {
		return p.errf("unexpected EOF, wanted %q", want)
	}
	if tok != want {
		return p.errf("expected %q, got %q", want, tok)
	}
	return nil
}

func (p *parser) expectWord(want string) error {
	tok, ok := p.sc.next()
	if !ok {
		return p.errf("unexpected EOF, wanted %q", want)
	}
	if tok != want {
		return p.errf("expected %q, got %q", want, tok)
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("verilog: line %d: %s", p.sc.line, fmt.Sprintf(format, args...))
}

func (p *parser) wrap(err error) error {
	return fmt.Errorf("verilog: line %d: %w", p.sc.line, err)
}

// Write emits the netlist as flat structural Verilog that Parse round-trips.
// Filler and tap instances are included as portless instantiations.
func Write(w io.Writer, nl *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	var portNames []string
	for _, p := range nl.Ports {
		portNames = append(portNames, p.Name)
	}
	fmt.Fprintf(bw, "module %s ( %s );\n", nl.Name, strings.Join(portNames, ", "))

	var ins, outs []string
	for _, p := range nl.Ports {
		if p.Dir == netlist.In {
			ins = append(ins, p.Name)
		} else {
			outs = append(outs, p.Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, "  input %s ;\n", strings.Join(ins, ", "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(bw, "  output %s ;\n", strings.Join(outs, ", "))
	}

	isPort := make(map[string]bool, len(nl.Ports))
	for _, p := range nl.Ports {
		isPort[p.Name] = true
	}
	var wires []string
	for _, n := range nl.Nets {
		if !isPort[n.Name] {
			wires = append(wires, n.Name)
		}
	}
	sort.Strings(wires)
	for i := 0; i < len(wires); i += 10 {
		end := i + 10
		if end > len(wires) {
			end = len(wires)
		}
		fmt.Fprintf(bw, "  wire %s ;\n", strings.Join(wires[i:end], ", "))
	}
	bw.WriteString("\n")

	for _, in := range nl.Insts {
		var conns []string
		for _, c := range in.Conns {
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Pin, c.Net.Name))
		}
		fmt.Fprintf(bw, "  %s %s ( %s );\n", in.Master.Name, in.Name, strings.Join(conns, ", "))
	}
	bw.WriteString("endmodule\n")
	return bw.Flush()
}

// WriteString renders the netlist as Verilog text.
func WriteString(nl *netlist.Netlist) string {
	var b strings.Builder
	_ = Write(&b, nl)
	return b.String()
}

// scanner tokenizes Verilog: identifiers (including leading '.'), and the
// punctuation ( ) ; , as single tokens; // and /* */ comments skipped.
type scanner struct {
	br      *bufio.Reader
	line    int
	pending []string
}

func newScanner(r io.Reader) *scanner {
	return &scanner{br: bufio.NewReader(r), line: 1}
}

func (s *scanner) next() (string, bool) {
	if n := len(s.pending); n > 0 {
		tok := s.pending[n-1]
		s.pending = s.pending[:n-1]
		return tok, true
	}
	var b strings.Builder
	flush := func() (string, bool) {
		if b.Len() > 0 {
			return b.String(), true
		}
		return "", false
	}
	for {
		c, err := s.br.ReadByte()
		if err != nil {
			return flush()
		}
		switch {
		case c == '\n':
			s.line++
			if tok, ok := flush(); ok {
				return tok, true
			}
		case c == ' ' || c == '\t' || c == '\r':
			if tok, ok := flush(); ok {
				return tok, true
			}
		case c == '/':
			c2, err := s.br.ReadByte()
			if err != nil {
				b.WriteByte(c)
				return flush()
			}
			switch c2 {
			case '/':
				for {
					c3, err := s.br.ReadByte()
					if err != nil {
						break
					}
					if c3 == '\n' {
						s.line++
						break
					}
				}
				if tok, ok := flush(); ok {
					return tok, true
				}
			case '*':
				var prev byte
				for {
					c3, err := s.br.ReadByte()
					if err != nil {
						break
					}
					if c3 == '\n' {
						s.line++
					}
					if prev == '*' && c3 == '/' {
						break
					}
					prev = c3
				}
				if tok, ok := flush(); ok {
					return tok, true
				}
			default:
				b.WriteByte(c)
				b.WriteByte(c2)
			}
		case c == '(' || c == ')' || c == ';' || c == ',':
			if b.Len() > 0 {
				s.pending = append(s.pending, string(c))
				return b.String(), true
			}
			return string(c), true
		default:
			b.WriteByte(c)
		}
	}
}
