package gdsiiguard

import (
	"testing"

	"gdsiiguard/internal/nsga2"
	"gdsiiguard/internal/route"
	"gdsiiguard/internal/sta"
)

// TestBenchmarkFrontUnchangedByWorkers is the end-to-end golden check for
// the intra-evaluation parallel paths: a full exploration with wave-parallel
// routing and level-parallel STA at 4 workers must reproduce the sequential
// exploration's Pareto front bit-for-bit — same evaluation count, same
// front, same metrics. Worker count is a throughput knob, never a results
// knob.
func TestBenchmarkFrontUnchangedByWorkers(t *testing.T) {
	designs := []string{"PRESENT"}
	if !testing.Short() {
		designs = append(designs, "openMSP430_1")
	}
	defer route.SetWorkers(0)
	defer sta.SetWorkers(0)
	for _, name := range designs {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := LoadBenchmark(name)
			if err != nil {
				t.Fatal(err)
			}
			opt := nsga2.Options{PopSize: 8, Generations: 3, Seed: 1}

			route.SetWorkers(4)
			sta.SetWorkers(4)
			par, err := nsga2.Optimize(d.base, opt)
			if err != nil {
				t.Fatalf("parallel Optimize: %v", err)
			}
			route.SetWorkers(1)
			sta.SetWorkers(1)
			seq, err := nsga2.Optimize(d.base, opt)
			if err != nil {
				t.Fatalf("sequential Optimize: %v", err)
			}

			if len(par.Evaluations) != len(seq.Evaluations) {
				t.Fatalf("evaluation counts differ: %d != %d", len(par.Evaluations), len(seq.Evaluations))
			}
			if len(par.Front) != len(seq.Front) {
				t.Fatalf("front sizes differ: %d != %d", len(par.Front), len(seq.Front))
			}
			for i := range seq.Front {
				g, w := par.Front[i], seq.Front[i]
				if g.Params.Key() != w.Params.Key() {
					t.Errorf("front[%d]: params %s != %s", i, g.Params.Key(), w.Params.Key())
				}
				gm, wm := g.Metrics, w.Metrics
				gm.Runtime, wm.Runtime = 0, 0
				if gm != wm {
					t.Errorf("front[%d] (%s): metrics %+v != %+v", i, g.Params.Key(), gm, wm)
				}
			}
		})
	}
}
